"""Deterministic random-number helpers.

All stochastic components of the library (LPPMs, dataset generators, the
deployment simulator) accept either an integer seed, ``None`` (fresh OS
entropy), or an existing :class:`numpy.random.Generator`.  Centralising
the coercion here guarantees reproducible experiments: every benchmark
and test passes an explicit seed, so figure regeneration is stable from
run to run.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, None, np.random.Generator]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged so that callers
    can thread one generator through a pipeline without reseeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list:
    """Derive *count* independent child generators from *rng*.

    Used when work is fanned out per-user so that changing the number of
    users does not perturb the random stream of other users.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def stable_user_seed(base_seed: int, user_id: str) -> int:
    """Return a deterministic per-user seed derived from *base_seed*.

    The hash is order-independent: protecting users in a different order
    (or in parallel) yields identical obfuscated traces.
    """
    digest = 1469598103934665603  # FNV-1a 64-bit offset basis
    for ch in user_id:
        digest ^= ord(ch)
        digest = (digest * 1099511628211) % (2**64)
    return (digest ^ (base_seed & 0xFFFFFFFFFFFFFFFF)) % (2**63 - 1)
