"""Plugin registries: the single catalog behind the protection API.

Every pluggable component of the system — LPPMs, re-identification
attacks, fine-grained split policies, composition-search strategies,
dataset executors, and corpus providers — registers itself under a
short, stable slug:

    from repro.registry import register_lppm

    @register_lppm("geoi")
    class GeoInd(LPPM): ...

Components are then constructible from plain, JSON-serialisable *specs*
(deterministic routing: the spec names the component, the registry does
the lookup, the constructor gets the remaining keys as kwargs)::

    build("lppm", "geoi")                      # defaults
    build("lppm", {"name": "geoi", "epsilon": 0.02})

This is what makes :class:`repro.config.ProtectionConfig` fully
declarative: a whole run is a dict of specs, and
:meth:`repro.core.engine.ProtectionEngine.from_config` rebuilds every
object from it.

Registered objects are usually classes (instantiated with the spec's
keyword arguments).  ``split_policy`` entries are an exception: they are
plain callables ``trace -> (left, right)`` used as-is (parameters, when
given, are bound with :func:`functools.partial`).

The ``executor`` kind catalogs the batch backends of
:meth:`repro.core.engine.ProtectionEngine.protect_dataset` — built-ins
``serial``, ``process``, ``async``, ``sharded``, and ``remote`` (specs
like ``{"name": "sharded", "shards": 8}`` or ``{"name": "remote",
"endpoints": ["10.0.0.1:7464"], "shards": 8}``), all required to
publish byte-identical datasets on the same corpus.

The module is intentionally import-light (only :mod:`repro.errors`), so
component modules can import it without cycles; the built-in catalog is
loaded lazily on first lookup.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, List, Mapping, Union

from repro.errors import ConfigurationError

#: A component spec: either a bare registered name, or a dict with a
#: ``"name"`` key plus constructor keyword arguments.
Spec = Union[str, Mapping[str, Any]]

#: The component kinds the system routes through registries.
KINDS = ("lppm", "attack", "split_policy", "search_strategy", "executor", "corpus")

_REGISTRIES: Dict[str, Dict[str, Any]] = {kind: {} for kind in KINDS}
_BUILTINS_LOADED = False


def _check_kind(kind: str) -> None:
    if kind not in _REGISTRIES:
        raise ConfigurationError(
            f"unknown registry kind {kind!r}; choose from {KINDS}"
        )


def _ensure_builtins() -> None:
    """Import the modules whose decorators populate the built-in catalog.

    The flag is only set once every import succeeded: a failed first
    load must surface its ImportError again on the next lookup instead
    of leaving the catalog silently partial.  (Safe from recursion —
    the imported modules only call :func:`register`, never lookups.)
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    import repro.attacks  # noqa: F401  (registers poi/pit/ap)
    import repro.core.engine  # noqa: F401  (registers split policies, executors)
    import repro.core.search  # noqa: F401  (registers search strategies)
    import repro.datasets.generators  # noqa: F401  (registers the classic corpora)
    import repro.lppm  # noqa: F401  (registers the LPPM suite)
    import repro.synth.corpus  # noqa: F401  (registers the synth corpus)

    _BUILTINS_LOADED = True


def register(kind: str, name: str) -> Callable[[Any], Any]:
    """Decorator: catalog *obj* under ``(kind, name)`` and return it."""
    _check_kind(kind)
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"registry name must be a non-empty str, got {name!r}")

    def decorator(obj: Any) -> Any:
        existing = _REGISTRIES[kind].get(name)
        if existing is not None and existing is not obj:
            raise ConfigurationError(
                f"{kind} {name!r} is already registered to {existing!r}"
            )
        _REGISTRIES[kind][name] = obj
        try:
            obj.registry_name = name
        except (AttributeError, TypeError):  # pragma: no cover - exotic objects
            pass
        return obj

    return decorator


def register_lppm(name: str) -> Callable[[Any], Any]:
    """``@register_lppm("geoi")`` — catalog an LPPM class."""
    return register("lppm", name)


def register_attack(name: str) -> Callable[[Any], Any]:
    """``@register_attack("poi")`` — catalog an attack class."""
    return register("attack", name)


def register_split_policy(name: str) -> Callable[[Any], Any]:
    """``@register_split_policy("half")`` — catalog a trace splitter."""
    return register("split_policy", name)


def register_search_strategy(name: str) -> Callable[[Any], Any]:
    """``@register_search_strategy("greedy")`` — catalog a search strategy."""
    return register("search_strategy", name)


def register_executor(name: str) -> Callable[[Any], Any]:
    """``@register_executor("process")`` — catalog an execution backend."""
    return register("executor", name)


def register_corpus(name: str) -> Callable[[Any], Any]:
    """``@register_corpus("synth")`` — catalog a corpus provider.

    Corpus providers expose ``name``, ``n_users``, a lazy
    ``iter_traces()`` iterator, and a materialising ``generate()``.
    """
    return register("corpus", name)


def available(kind: str) -> List[str]:
    """Sorted names registered under *kind* (built-ins included)."""
    _check_kind(kind)
    _ensure_builtins()
    return sorted(_REGISTRIES[kind])


def get(kind: str, name: str) -> Any:
    """The raw registered object for ``(kind, name)``.

    Raises :class:`~repro.errors.ConfigurationError` listing the known
    names, so config typos fail with an actionable message.
    """
    _check_kind(kind)
    _ensure_builtins()
    try:
        return _REGISTRIES[kind][name]
    except KeyError:
        raise ConfigurationError(
            f"unknown {kind} {name!r}; registered: {available(kind)}"
        ) from None


def normalize_spec(spec: Spec) -> Dict[str, Any]:
    """Canonicalise *spec* to a plain ``{"name": ..., **params}`` dict."""
    if isinstance(spec, str):
        return {"name": spec}
    if isinstance(spec, Mapping):
        out = dict(spec)
        name = out.get("name")
        if not name or not isinstance(name, str):
            raise ConfigurationError(
                f"component spec needs a non-empty 'name' key, got {spec!r}"
            )
        return out
    raise ConfigurationError(
        f"component spec must be a name or a dict, got {type(spec).__name__}"
    )


def build(kind: str, spec: Spec) -> Any:
    """Construct a component of *kind* from a plain *spec*.

    Classes are instantiated with the spec's keyword arguments;
    ``split_policy`` callables are returned as-is (or partially applied
    when the spec carries parameters).  The canonical spec is attached to
    the result so :func:`spec_of` can round-trip it.
    """
    canonical = normalize_spec(spec)
    params = {k: v for k, v in canonical.items() if k != "name"}
    factory = get(kind, canonical["name"])
    if kind == "split_policy":
        obj = functools.partial(factory, **params) if params else factory
    else:
        try:
            obj = factory(**params)
        except TypeError as exc:
            raise ConfigurationError(
                f"cannot build {kind} {canonical['name']!r} from {params!r}: {exc}"
            ) from exc
    try:
        obj._registry_spec = canonical
    except (AttributeError, TypeError):  # pragma: no cover - frozen objects
        pass
    return obj


def spec_of(obj: Any) -> Dict[str, Any]:
    """The spec *obj* was built from (or a bare-name spec for built-ins)."""
    spec = getattr(obj, "_registry_spec", None)
    if spec is not None:
        return dict(spec)
    name = getattr(obj, "registry_name", None) or getattr(
        type(obj), "registry_name", None
    )
    if name is not None:
        return {"name": name}
    raise ConfigurationError(f"{obj!r} was not built through the registry")
