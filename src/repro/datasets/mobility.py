"""Agent-based mobility simulation.

Two agent families cover the paper's four corpora:

* :class:`ResidentSimulator` — commuters with a home, (usually) a
  workplace, and a few shared leisure places.  Daily schedules follow a
  wake → commute → work → leisure → home pattern with per-user phase
  noise, producing the POI/MMC/heatmap structure that re-identification
  attacks exploit.  A configurable fraction of *drifters* re-draw their
  anchor places mid-campaign, which makes them naturally hard to
  re-identify (their background knowledge goes stale) — the paper's
  "naturally insensitive" users.
* :class:`CabSimulator` — taxi drivers roaming between city waypoints
  during shifts.  Drivers share one waypoint pool with per-driver zone
  preferences of varying peakedness, reproducing Cabspotting's
  homogeneity (about half the fleet is naturally protected).

Traces are sampled at a fixed GPS period with white position noise and
random hour-long sensing gaps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.trace import Trace
from repro.datasets.cities import City
from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_HOUR = 3_600.0


@dataclass(frozen=True)
class Segment:
    """A linear piece of an agent's day: position interpolates t0→t1."""

    t0: float
    t1: float
    start: Tuple[float, float]
    end: Tuple[float, float]

    def position_at(self, t: float) -> Tuple[float, float]:
        if self.t1 <= self.t0:
            return self.start
        w = min(1.0, max(0.0, (t - self.t0) / (self.t1 - self.t0)))
        return (
            self.start[0] + w * (self.end[0] - self.start[0]),
            self.start[1] + w * (self.end[1] - self.start[1]),
        )


def sample_segments(
    user_id: str,
    segments: Sequence[Segment],
    sample_period_s: float,
    gps_noise_m: float,
    gap_probability_per_hour: float,
    rng: np.random.Generator,
) -> Trace:
    """Sample a GPS trace along a chronological list of segments.

    Each hour of the campaign is independently dropped with
    ``gap_probability_per_hour`` (phone off / no fix), then positions are
    sampled every ``sample_period_s`` within the remaining segments with
    isotropic Gaussian GPS noise.
    """
    if not segments:
        return Trace.empty(user_id)
    t_begin = segments[0].t0
    t_end = segments[-1].t1
    times = np.arange(t_begin, t_end, sample_period_s)
    if times.size == 0:
        return Trace.empty(user_id)
    hours = np.floor((times - t_begin) / SECONDS_PER_HOUR).astype(np.int64)
    n_hours = int(hours.max()) + 1
    dropped = rng.uniform(size=n_hours) < gap_probability_per_hour
    keep = ~dropped[hours]
    times = times[keep]
    if times.size == 0:
        return Trace.empty(user_id)
    starts = np.array([s.t0 for s in segments])
    ends = np.array([s.t1 for s in segments])
    idx = np.clip(np.searchsorted(starts, times, side="right") - 1, 0, len(segments) - 1)
    # Drop samples falling in holes between segments (e.g. overnight
    # between taxi shifts) — otherwise they would clamp to the previous
    # segment's end and fabricate phantom dwells.
    covered = times <= ends[idx]
    times = times[covered]
    idx = idx[covered]
    if times.size == 0:
        return Trace.empty(user_id)
    # Vectorized Segment.position_at over all samples: same float64
    # operation order (w = clamp((t - t0) / span); start + w * (end -
    # start)), so the result is bit-identical to the per-point loop it
    # replaced — pinned by the golden-fingerprint tests.
    seg_t0 = starts[idx]
    span = ends[idx] - seg_t0
    with np.errstate(divide="ignore", invalid="ignore"):
        w = np.clip((times - seg_t0) / span, 0.0, 1.0)
    w = np.where(span > 0.0, w, 0.0)
    start_lat = np.array([s.start[0] for s in segments])[idx]
    start_lng = np.array([s.start[1] for s in segments])[idx]
    end_lat = np.array([s.end[0] for s in segments])[idx]
    end_lng = np.array([s.end[1] for s in segments])[idx]
    lats = start_lat + w * (end_lat - start_lat)
    lngs = start_lng + w * (end_lng - start_lng)
    # GPS noise: metres to degrees at the segment latitude.
    m_per_deg = 111_320.0
    noise = rng.normal(0.0, gps_noise_m, size=(times.size, 2))
    lats = lats + noise[:, 0] / m_per_deg
    lngs = lngs + noise[:, 1] / (m_per_deg * np.cos(np.radians(lats)))
    return Trace(user_id, times, lats, lngs)


# ---------------------------------------------------------------------------
# Residents (MDC, PrivaMov, Geolife)
# ---------------------------------------------------------------------------


@dataclass
class ResidentConfig:
    """Parameters of the commuter simulator."""

    sample_period_s: float = 600.0
    gps_noise_m: float = 15.0
    gap_probability_per_hour: float = 0.25
    #: Fraction of users whose anchors change mid-campaign (naturally
    #: protected users).
    drift_fraction: float = 0.2
    #: Fraction of users with a workplace (others stay around home/leisure).
    worker_fraction: float = 0.85
    #: Number of shared leisure places in the city pool.
    leisure_pool: int = 25
    #: Leisure places per user.
    leisure_per_user: int = 3
    #: Probability of a leisure outing on any evening.
    leisure_probability: float = 0.5
    #: Spatial spread of homes relative to the city radius.
    home_spread: float = 1.0
    #: Travel speed (m/s): brisk multimodal commute.
    speed_mps: float = 8.0


@dataclass
class _Anchors:
    home: Tuple[float, float]
    work: Optional[Tuple[float, float]]
    leisure: List[Tuple[float, float]]


class ResidentSimulator:
    """Simulates commuting residents of a city."""

    def __init__(self, city: City, config: Optional[ResidentConfig] = None) -> None:
        self.city = city
        self.config = config or ResidentConfig()

    def _draw_anchors(self, rng: np.random.Generator) -> _Anchors:
        cfg = self.config
        home = self.city.random_point(rng, spread=cfg.home_spread)
        work = (
            self.city.random_point(rng, spread=0.8)
            if rng.uniform() < cfg.worker_fraction
            else None
        )
        return _Anchors(home=home, work=work, leisure=[])

    def simulate_user(
        self,
        user_id: str,
        start_t: float,
        days: int,
        rng: SeedLike = None,
        leisure_pool: Optional[List[Tuple[float, float]]] = None,
    ) -> Trace:
        """Generate one user's trace over *days* days starting at *start_t*."""
        if days <= 0:
            raise ConfigurationError(f"days must be positive, got {days}")
        gen = make_rng(rng)
        cfg = self.config
        pool = leisure_pool or self.city.random_points(cfg.leisure_pool, gen, spread=0.7)
        anchors = self._draw_anchors(gen)
        anchors.leisure = [
            pool[int(i)]
            for i in gen.choice(len(pool), size=min(cfg.leisure_per_user, len(pool)), replace=False)
        ]
        drifts = gen.uniform() < cfg.drift_fraction
        drift_day = days // 2
        segments: List[Segment] = []
        current = anchors
        for day in range(days):
            if drifts and day == drift_day:
                fresh = self._draw_anchors(gen)
                fresh.leisure = [
                    pool[int(i)]
                    for i in gen.choice(
                        len(pool), size=min(cfg.leisure_per_user, len(pool)), replace=False
                    )
                ]
                current = fresh
            day_start = start_t + day * SECONDS_PER_DAY
            weekday = day % 7 < 5
            segments.extend(self._simulate_day(day_start, current, weekday, gen))
        return sample_segments(
            user_id,
            segments,
            cfg.sample_period_s,
            cfg.gps_noise_m,
            cfg.gap_probability_per_hour,
            gen,
        )

    def _simulate_day(
        self,
        day_start: float,
        anchors: _Anchors,
        weekday: bool,
        rng: np.random.Generator,
    ) -> List[Segment]:
        """One day's schedule as a chronological list of segments."""
        cfg = self.config
        segments: List[Segment] = []
        t = day_start
        here = anchors.home

        def dwell(until: float, place: Tuple[float, float]) -> None:
            nonlocal t
            if until > t:
                segments.append(Segment(t, until, place, place))
                t = until

        def travel(to: Tuple[float, float]) -> Tuple[float, float]:
            nonlocal t, here
            dist = _approx_distance_m(here, to)
            duration = max(120.0, dist / cfg.speed_mps)
            segments.append(Segment(t, t + duration, here, to))
            t += duration
            here = to
            return to

        wake = day_start + (7.0 + rng.normal(0.0, 0.7)) * SECONDS_PER_HOUR
        dwell(wake, anchors.home)
        if weekday and anchors.work is not None:
            travel(anchors.work)
            work_end = day_start + (17.0 + rng.normal(0.0, 1.0)) * SECONDS_PER_HOUR
            dwell(max(work_end, t + SECONDS_PER_HOUR), anchors.work)
        elif anchors.leisure and rng.uniform() < 0.7:
            place = anchors.leisure[int(rng.integers(len(anchors.leisure)))]
            travel(place)
            dwell(t + rng.uniform(2.0, 5.0) * SECONDS_PER_HOUR, place)
        if anchors.leisure and rng.uniform() < cfg.leisure_probability:
            place = anchors.leisure[int(rng.integers(len(anchors.leisure)))]
            travel(place)
            dwell(t + rng.uniform(1.0, 3.0) * SECONDS_PER_HOUR, place)
        travel(anchors.home)
        dwell(day_start + SECONDS_PER_DAY, anchors.home)
        return segments


# ---------------------------------------------------------------------------
# Taxi fleet (Cabspotting)
# ---------------------------------------------------------------------------


@dataclass
class CabConfig:
    """Parameters of the taxi-fleet simulator."""

    sample_period_s: float = 300.0
    gps_noise_m: float = 15.0
    gap_probability_per_hour: float = 0.1
    #: Number of shared pickup/dropoff waypoints across the city.
    waypoints: int = 40
    #: Fraction of drivers with strongly peaked zone preferences — these
    #: are the re-identifiable half of the fleet.
    biased_fraction: float = 0.5
    #: Dirichlet concentration for biased / unbiased drivers.
    biased_alpha: float = 0.9
    uniform_alpha: float = 5.0
    #: Day-to-day stability of a driver's zone preferences: each day's
    #: effective preference vector is drawn from Dirichlet(stability ×
    #: base + ε).  High stability → the driver repeats her zones week
    #: after week (re-identifiable); low stability → demand-driven
    #: roaming that decorrelates the training and attack weeks, which is
    #: what makes roughly half of the real Cabspotting fleet naturally
    #: protected.
    pref_stability_biased: float = 120.0
    pref_stability_uniform: float = 4.0
    speed_mps: float = 10.0
    shift_start_h: float = 7.0
    shift_hours: float = 11.0
    #: Idle wait at each waypoint, seconds (uniform between the two).
    wait_s: Tuple[float, float] = (300.0, 1200.0)
    #: Per-cycle probability of parking at the driver's preferred taxi
    #: stand for a long wait — this is what gives drivers POIs (real cab
    #: corpora have them too, which is why POI/PIT attacks also bite on
    #: Cabspotting in the paper).
    stand_probability: float = 0.12
    #: Long-wait duration at the stand, seconds (uniform between the two).
    stand_wait_s: Tuple[float, float] = (3900.0, 6000.0)


class CabSimulator:
    """Simulates a fleet of taxis sharing a waypoint pool."""

    def __init__(self, city: City, config: Optional[CabConfig] = None) -> None:
        self.city = city
        self.config = config or CabConfig()

    def simulate_user(
        self,
        user_id: str,
        start_t: float,
        days: int,
        rng: SeedLike = None,
        waypoint_pool: Optional[List[Tuple[float, float]]] = None,
    ) -> Trace:
        if days <= 0:
            raise ConfigurationError(f"days must be positive, got {days}")
        gen = make_rng(rng)
        cfg = self.config
        pool = waypoint_pool or self.city.random_points(cfg.waypoints, gen, spread=0.9)
        biased = gen.uniform() < cfg.biased_fraction
        alpha = cfg.biased_alpha if biased else cfg.uniform_alpha
        stability = cfg.pref_stability_biased if biased else cfg.pref_stability_uniform
        base_prefs = gen.dirichlet(np.full(len(pool), alpha))
        #: The driver's habitual taxi stand — a personal, dwell-worthy POI
        #: for biased drivers; demand-driven drivers queue wherever the
        #: day takes them.
        personal_stand = pool[int(gen.choice(len(pool), p=base_prefs))]
        segments: List[Segment] = []
        for day in range(days):
            prefs = gen.dirichlet(base_prefs * stability + 1e-3)
            stand = (
                personal_stand
                if biased
                else pool[int(gen.choice(len(pool), p=prefs))]
            )
            day_start = start_t + day * SECONDS_PER_DAY
            t = day_start + (cfg.shift_start_h + gen.normal(0.0, 0.5)) * SECONDS_PER_HOUR
            shift_end = t + cfg.shift_hours * SECONDS_PER_HOUR
            here = pool[int(gen.choice(len(pool), p=prefs))]
            while t < shift_end:
                if gen.uniform() < cfg.stand_probability:
                    dist = _approx_distance_m(here, stand)
                    duration = max(60.0, dist / cfg.speed_mps)
                    segments.append(Segment(t, t + duration, here, stand))
                    t += duration
                    here = stand
                    wait = gen.uniform(*cfg.stand_wait_s)
                else:
                    wait = gen.uniform(*cfg.wait_s)
                segments.append(Segment(t, t + wait, here, here))
                t += wait
                target = pool[int(gen.choice(len(pool), p=prefs))]
                dist = _approx_distance_m(here, target)
                duration = max(60.0, dist / cfg.speed_mps)
                segments.append(Segment(t, t + duration, here, target))
                t += duration
                here = target
        return sample_segments(
            user_id,
            segments,
            cfg.sample_period_s,
            cfg.gps_noise_m,
            cfg.gap_probability_per_hour,
            gen,
        )


def _approx_distance_m(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Equirectangular distance between two (lat, lng) pairs, metres."""
    m_per_deg = 111_320.0
    dy = (b[0] - a[0]) * m_per_deg
    dx = (b[1] - a[1]) * m_per_deg * math.cos(math.radians(0.5 * (a[0] + b[0])))
    return math.hypot(dx, dy)
