"""Dataset substrate: synthetic corpora, city models, CSV I/O."""

from repro.datasets.cities import (
    BEIJING,
    CITIES,
    GENEVA,
    LYON,
    SAIGON,
    SAN_FRANCISCO,
    City,
)
from repro.datasets.generators import (
    DATASET_NAMES,
    DEFAULT_DAYS,
    DEFAULT_START_T,
    SPECS,
    DatasetSpec,
    generate_all,
    generate_dataset,
)
from repro.datasets.io import load_csv, save_csv, to_csv_string
from repro.datasets.mobility import (
    CabConfig,
    CabSimulator,
    ResidentConfig,
    ResidentSimulator,
    Segment,
    sample_segments,
)

__all__ = [
    "City",
    "CITIES",
    "GENEVA",
    "LYON",
    "BEIJING",
    "SAN_FRANCISCO",
    "SAIGON",
    "DatasetSpec",
    "SPECS",
    "DATASET_NAMES",
    "DEFAULT_DAYS",
    "DEFAULT_START_T",
    "generate_dataset",
    "generate_all",
    "load_csv",
    "save_csv",
    "to_csv_string",
    "ResidentSimulator",
    "ResidentConfig",
    "CabSimulator",
    "CabConfig",
    "Segment",
    "sample_segments",
]
