"""Synthetic stand-ins for the paper's four evaluation corpora (Table 1).

Each generator produces a :class:`~repro.core.dataset.MobilityDataset`
whose qualitative character matches the real corpus it replaces (see
DESIGN.md §3 for the substitution rationale):

* ``mdc`` — Geneva commuters (MDC [19]); regular weekday patterns, a
  moderate share of drifters.
* ``privamov`` — Lyon campaign (PrivaMov [8]); compact city, dense
  sampling, few drifters — the most re-identifiable corpus.
* ``geolife`` — Beijing (Geolife [34]); sprawling city, heterogeneous
  users, sparser sampling.
* ``cabspotting`` — San Francisco taxis (Cabspotting [24]); homogeneous
  fleet sharing one waypoint pool, about half naturally protected.

User counts are scaled down from the paper (141/41/41/531) by default so
the full benchmark suite runs in minutes; pass ``n_users`` to override.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.dataset import MobilityDataset
from repro.datasets.cities import BEIJING, GENEVA, LYON, SAN_FRANCISCO, City
from repro.datasets.mobility import (
    CabConfig,
    CabSimulator,
    ResidentConfig,
    ResidentSimulator,
)
from repro.errors import ConfigurationError
from repro.registry import register_corpus
from repro.rng import SeedLike, make_rng, spawn

#: Campaign start: 2019-06-03 00:00 UTC (a Monday), matching the paper's
#: 30-day most-active-window protocol.
DEFAULT_START_T = 1_559_520_000.0
DEFAULT_DAYS = 30


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic corpus."""

    name: str
    city: City
    #: Paper's user count (Table 1) and the scaled default used here.
    paper_users: int
    default_users: int
    kind: str  # "resident" | "cab"
    drift_fraction: float = 0.2
    sample_period_s: float = 600.0
    gap_probability_per_hour: float = 0.25
    home_spread: float = 1.0
    leisure_pool: int = 25


SPECS: Dict[str, DatasetSpec] = {
    "mdc": DatasetSpec(
        name="mdc",
        city=GENEVA,
        paper_users=141,
        default_users=48,
        kind="resident",
        drift_fraction=0.28,
        sample_period_s=600.0,
        gap_probability_per_hour=0.25,
    ),
    "privamov": DatasetSpec(
        name="privamov",
        city=LYON,
        paper_users=41,
        default_users=41,
        kind="resident",
        drift_fraction=0.10,
        sample_period_s=450.0,
        gap_probability_per_hour=0.15,
        home_spread=0.8,
        leisure_pool=18,
    ),
    "geolife": DatasetSpec(
        name="geolife",
        city=BEIJING,
        paper_users=41,
        default_users=41,
        kind="resident",
        drift_fraction=0.22,
        sample_period_s=700.0,
        gap_probability_per_hour=0.35,
        home_spread=1.2,
        leisure_pool=35,
    ),
    "cabspotting": DatasetSpec(
        name="cabspotting",
        city=SAN_FRANCISCO,
        paper_users=531,
        default_users=64,
        kind="cab",
    ),
}

DATASET_NAMES = tuple(sorted(SPECS))


def generate_dataset(
    name: str,
    seed: SeedLike = 0,
    n_users: Optional[int] = None,
    days: int = DEFAULT_DAYS,
    start_t: float = DEFAULT_START_T,
) -> MobilityDataset:
    """Generate the synthetic corpus *name* (one of :data:`DATASET_NAMES`).

    The per-user random streams are derived independently from *seed*,
    so changing ``n_users`` does not perturb existing users' traces.
    """
    if name not in SPECS:
        raise ConfigurationError(
            f"unknown dataset {name!r}; choose from {sorted(SPECS)}"
        )
    spec = SPECS[name]
    users = spec.default_users if n_users is None else int(n_users)
    if users <= 0:
        raise ConfigurationError(f"n_users must be positive, got {users}")
    gen = make_rng(seed)
    pool_rng, *user_rngs = spawn(gen, users + 1)
    dataset = MobilityDataset(name)
    if spec.kind == "resident":
        config = ResidentConfig(
            sample_period_s=spec.sample_period_s,
            gap_probability_per_hour=spec.gap_probability_per_hour,
            drift_fraction=spec.drift_fraction,
            home_spread=spec.home_spread,
            leisure_pool=spec.leisure_pool,
        )
        sim = ResidentSimulator(spec.city, config)
        pool = spec.city.random_points(config.leisure_pool, pool_rng, spread=0.7)
        for i in range(users):
            user_id = f"{name}_{i:03d}"
            trace = sim.simulate_user(
                user_id, start_t, days, user_rngs[i], leisure_pool=pool
            )
            dataset.add(trace)
    else:
        config = CabConfig()
        sim = CabSimulator(spec.city, config)
        # Waypoints concentrated downtown: 1 km dummies blur zone
        # signatures, reproducing TRL's strength on Cabspotting.
        pool = spec.city.random_points(config.waypoints, pool_rng, spread=0.6)
        for i in range(users):
            user_id = f"{name}_{i:03d}"
            trace = sim.simulate_user(
                user_id, start_t, days, user_rngs[i], waypoint_pool=pool
            )
            dataset.add(trace)
    return dataset


@register_corpus("classic")
class ClassicCorpus:
    """Corpus-provider façade over the four paper corpora.

    Gives the hand-tuned generators the same interface as
    :class:`repro.synth.corpus.SynthCorpus` (``name`` / ``n_users`` /
    ``iter_traces()`` / ``generate()``), so the CLI and benchmarks can
    treat ``--corpus classic:privamov`` and ``--corpus synth:lyon:10k``
    uniformly.  Unlike the synth engine the classic generators are
    whole-dataset (shared leisure/waypoint pools drawn from one parent
    stream), so ``iter_traces`` materialises the dataset first — fine at
    their tens-of-users scale.
    """

    def __init__(
        self,
        dataset: str = "privamov",
        seed: int = 0,
        n_users: Optional[int] = None,
        days: int = DEFAULT_DAYS,
        start_t: float = DEFAULT_START_T,
    ) -> None:
        if dataset not in SPECS:
            raise ConfigurationError(
                f"unknown dataset {dataset!r}; choose from {sorted(SPECS)}"
            )
        self.dataset = dataset
        self.seed = seed
        self.days = days
        self.start_t = start_t
        self._n_users = (
            SPECS[dataset].default_users if n_users is None else int(n_users)
        )
        if self._n_users <= 0:
            raise ConfigurationError(f"n_users must be positive, got {self._n_users}")

    @property
    def name(self) -> str:
        return self.dataset

    @property
    def n_users(self) -> int:
        return self._n_users

    def generate(self) -> MobilityDataset:
        return generate_dataset(
            self.dataset,
            seed=self.seed,
            n_users=self._n_users,
            days=self.days,
            start_t=self.start_t,
        )

    def iter_traces(self):
        return iter(self.generate().traces())


def generate_all(
    seed: SeedLike = 0,
    n_users: Optional[Dict[str, int]] = None,
    days: int = DEFAULT_DAYS,
) -> Dict[str, MobilityDataset]:
    """Generate all four corpora (used by the figure harnesses)."""
    sizes = n_users or {}
    return {
        name: generate_dataset(name, seed=seed, n_users=sizes.get(name), days=days)
        for name in DATASET_NAMES
    }
