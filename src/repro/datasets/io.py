"""CSV persistence for mobility datasets.

The on-disk format is the lowest common denominator of the real corpora:
one row per record, ``user_id,timestamp,lat,lng``, sorted per user by
time.  Round-tripping through this format is exercised by property
tests, and the CLI uses it to exchange datasets with external tools.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.core.dataset import MobilityDataset
from repro.core.trace import Trace

HEADER = ["user_id", "timestamp", "lat", "lng"]


def _write_trace(writer, trace: Trace) -> int:
    """Write one trace's rows through *writer*; returns the row count."""
    for i in range(len(trace)):
        writer.writerow(
            [
                trace.user_id,
                repr(float(trace.timestamps[i])),
                repr(float(trace.lats[i])),
                repr(float(trace.lngs[i])),
            ]
        )
    return len(trace)


def write_csv_stream(traces: Iterable[Trace], path: Union[str, Path]) -> int:
    """Write an iterable of traces to *path*; returns the rows written.

    Consumes the iterator one trace at a time, so a 1M-user corpus
    streamed from :meth:`repro.synth.SynthCorpus.iter_traces` writes in
    constant memory.  Rows land in iteration order: pass traces sorted
    by user id to match :func:`save_csv` byte for byte (both funnel
    through the same row writer — pinned by a regression test).
    """
    path = Path(path)
    rows = 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh, lineterminator="\n")
        writer.writerow(HEADER)
        for trace in traces:
            rows += _write_trace(writer, trace)
    return rows


def save_csv(dataset: MobilityDataset, path: Union[str, Path]) -> int:
    """Write *dataset* to *path*; returns the number of rows written."""
    return write_csv_stream(dataset.traces(), path)


def load_csv(path: Union[str, Path], name: str = "") -> MobilityDataset:
    """Read a dataset written by :func:`save_csv` (or any conforming CSV)."""
    path = Path(path)
    by_user: Dict[str, List[List[float]]] = {}
    with path.open("r", newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None:
            raise ValueError(f"{path} is empty")
        if [h.strip().lower() for h in header] != HEADER:
            raise ValueError(f"{path} has unexpected header {header!r}")
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 4:
                raise ValueError(f"{path}:{lineno}: expected 4 columns, got {len(row)}")
            user, t, lat, lng = row
            by_user.setdefault(user, [[], [], []])
            cols = by_user[user]
            cols[0].append(float(t))
            cols[1].append(float(lat))
            cols[2].append(float(lng))
    dataset = MobilityDataset(name or path.stem)
    for user in sorted(by_user):
        t, lat, lng = by_user[user]
        order = sorted(range(len(t)), key=lambda i: t[i])
        dataset.add(
            Trace(
                user,
                [t[i] for i in order],
                [lat[i] for i in order],
                [lng[i] for i in order],
            )
        )
    return dataset


def to_csv_string(dataset: MobilityDataset) -> str:
    """Serialise *dataset* to an in-memory CSV string (for tests/tools)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(HEADER)
    for trace in dataset.traces():
        _write_trace(writer, trace)
    return buf.getvalue()
