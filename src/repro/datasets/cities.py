"""City models for the synthetic mobility generators.

Each of the paper's four corpora was collected in one metropolitan area;
the generators anchor their agents to these cities so that coordinate
magnitudes, grid reference latitudes, and inter-place distances are
realistic.  A :class:`City` also owns the pool of *shared places*
(shops, restaurants, transit hubs) that creates inter-user overlap —
the raw material of both re-identification and confusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.geo.geodesy import local_projector
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class City:
    """A metropolitan area: centre coordinates and an effective radius."""

    name: str
    center_lat: float
    center_lng: float
    radius_m: float

    def projector(self):
        """``(to_xy, to_latlng)`` local tangent-plane converters."""
        return local_projector(self.center_lat, self.center_lng)

    def random_point(
        self, rng: SeedLike = None, spread: float = 1.0
    ) -> Tuple[float, float]:
        """Gaussian-ish random point: radius folded within the city limits."""
        gen = make_rng(rng)
        _, to_latlng = self.projector()
        sigma = self.radius_m * spread / 2.0
        x = float(np.clip(gen.normal(0.0, sigma), -self.radius_m, self.radius_m))
        y = float(np.clip(gen.normal(0.0, sigma), -self.radius_m, self.radius_m))
        return to_latlng(x, y)

    def random_points(self, count: int, rng: SeedLike = None, spread: float = 1.0) -> List[Tuple[float, float]]:
        """*count* independent random points."""
        gen = make_rng(rng)
        return [self.random_point(gen, spread=spread) for _ in range(count)]


#: Geneva — the MDC campaign (Nokia / Idiap).
GENEVA = City("geneva", 46.2044, 6.1432, radius_m=8_000.0)

#: Lyon — the PrivaMov campaign (mostly students around the campuses).
LYON = City("lyon", 45.7640, 4.8357, radius_m=6_000.0)

#: Beijing — the Geolife corpus (Microsoft Research Asia).
BEIJING = City("beijing", 39.9042, 116.4074, radius_m=15_000.0)

#: San Francisco — the Cabspotting taxi corpus.
SAN_FRANCISCO = City("san_francisco", 37.7749, -122.4194, radius_m=7_000.0)

#: Ho Chi Minh City (Saigon) — the streaming live-loop exemplar city
#: (``mood stream replay``): dense monocentric sprawl across the Saigon
#: river, no corpus of the paper's four — deliberately, so the online
#: path is always exercised on data the batch experiments never fit on.
SAIGON = City("saigon", 10.7769, 106.7009, radius_m=9_000.0)

CITIES = {
    "geneva": GENEVA,
    "lyon": LYON,
    "beijing": BEIJING,
    "san_francisco": SAN_FRANCISCO,
    "saigon": SAIGON,
}
