"""Deployment substrate: crowdsensing middleware as an actual service.

Layers (bottom up):

* :mod:`repro.service.events` — deterministic discrete-event loop;
* :mod:`repro.service.client` / :mod:`repro.service.proxy` /
  :mod:`repro.service.server` — mobile client, MooD proxy (with
  session-scoped :class:`PseudonymProvider`), collection server;
* :mod:`repro.service.api` — the versioned, transport-agnostic service
  protocol (messages, JSON-lines codec, async
  :class:`ProtectionService` facade, loopback transport);
* :mod:`repro.service.rpc` — the socket transport (asyncio TCP / unix
  server + synchronous client SDK);
* :mod:`repro.service.campaign` — the end-to-end simulation, driven
  through the same service API as a real deployment.
"""

from repro.service.api import (
    AuthChallenge,
    AuthRequest,
    AuthResponse,
    ClusterHeartbeat,
    ClusterHeartbeatAck,
    ClusterJoin,
    ClusterJoined,
    ClusterLeave,
    ClusterLeft,
    ClusterMembershipRequest,
    ClusterMembershipResponse,
    ErrorEnvelope,
    LoopbackClient,
    MetricsRequest,
    MetricsResponse,
    ProtectionService,
    ProtectRequest,
    ProtectResponse,
    PublishedPiece,
    QueryRequest,
    QueryResponse,
    StatsRequest,
    StatsResponse,
    StreamAck,
    StreamClose,
    StreamClosed,
    StreamFlush,
    StreamFlushed,
    StreamOpen,
    StreamOpened,
    StreamRecord,
    UploadRequest,
    UploadResponse,
    WIRE_VERSION,
    auth_proof,
    decode_message,
    encode_message,
    load_auth_key,
    resolve_auth_key,
)
from repro.service.campaign import CampaignReport, CrowdsensingCampaign
from repro.service.client import MobileClient, UploadChunk
from repro.service.events import EventLoop
from repro.service.proxy import (
    MoodProxy,
    ProxyStats,
    PseudonymProvider,
    SessionPseudonyms,
    coerce_engine,
)
from repro.service.rpc import (
    AsyncServiceClient,
    Endpoint,
    RemoteClusterClient,
    ServiceClient,
    ServiceServer,
    parse_endpoint,
)
from repro.service.server import CollectionServer, ServerStats

__all__ = [
    "EventLoop",
    "MobileClient",
    "UploadChunk",
    "MoodProxy",
    "ProxyStats",
    "PseudonymProvider",
    "SessionPseudonyms",
    "coerce_engine",
    "CollectionServer",
    "ServerStats",
    "CrowdsensingCampaign",
    "CampaignReport",
    "WIRE_VERSION",
    "ProtectRequest",
    "ProtectResponse",
    "UploadRequest",
    "UploadResponse",
    "QueryRequest",
    "QueryResponse",
    "StatsRequest",
    "StatsResponse",
    "StreamOpen",
    "StreamOpened",
    "StreamRecord",
    "StreamAck",
    "StreamFlush",
    "StreamFlushed",
    "StreamClose",
    "StreamClosed",
    "AuthRequest",
    "AuthChallenge",
    "AuthResponse",
    "ClusterJoin",
    "ClusterJoined",
    "ClusterLeave",
    "ClusterLeft",
    "ClusterHeartbeat",
    "ClusterHeartbeatAck",
    "ClusterMembershipRequest",
    "ClusterMembershipResponse",
    "MetricsRequest",
    "MetricsResponse",
    "ErrorEnvelope",
    "PublishedPiece",
    "encode_message",
    "decode_message",
    "auth_proof",
    "load_auth_key",
    "resolve_auth_key",
    "ProtectionService",
    "LoopbackClient",
    "ServiceClient",
    "ServiceServer",
    "AsyncServiceClient",
    "RemoteClusterClient",
    "Endpoint",
    "parse_endpoint",
]
