"""Deployment substrate: crowdsensing middleware simulation."""

from repro.service.campaign import CampaignReport, CrowdsensingCampaign
from repro.service.client import MobileClient, UploadChunk
from repro.service.events import EventLoop
from repro.service.proxy import MoodProxy, ProxyStats
from repro.service.server import CollectionServer, ServerStats

__all__ = [
    "EventLoop",
    "MobileClient",
    "UploadChunk",
    "MoodProxy",
    "ProxyStats",
    "CollectionServer",
    "ServerStats",
    "CrowdsensingCampaign",
    "CampaignReport",
]
