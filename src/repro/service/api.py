"""Protection Service API v2: versioned messages, codec, and facade.

The paper's deployment unit is a middleware proxy between mobile clients
and the crowdsensing server.  This module turns that boundary into an
explicit, transport-agnostic protocol:

* **Messages** — request/response dataclasses (:class:`ProtectRequest`,
  :class:`ProtectResponse`, :class:`UploadRequest`,
  :class:`UploadResponse`, :class:`QueryRequest`,
  :class:`QueryResponse`, :class:`StatsRequest`, :class:`StatsResponse`)
  plus the :class:`ErrorEnvelope` every fault travels in.
* **Wire codec** — JSON lines.  One message is one JSON object on one
  ``\\n``-terminated line: ``{"v": 1, "type": "<slug>", "body": {...}}``
  with an optional ``"id"`` key (int or str) that tags a request so its
  reply can be correlated out of order; replies echo the id verbatim.
  Floats round-trip exactly (shortest-repr encoding), so a trace that
  crosses the wire protects byte-identically to one that never left the
  process.  Non-finite floats are rejected at encode time
  (``allow_nan=False``): ``NaN``/``Infinity`` tokens are not JSON and no
  conforming peer could parse them.
* **Facade** — :class:`ProtectionService` wraps a
  :class:`~repro.core.engine.ProtectionEngine` (via the
  :class:`~repro.service.proxy.MoodProxy`) and a
  :class:`~repro.service.server.CollectionServer` behind async
  ``protect()`` / ``upload()`` / ``query()`` / ``stats()`` methods, with
  pseudonym management delegated to a session-scoped
  :class:`~repro.service.proxy.PseudonymProvider`.
* **Loopback transport** — :class:`LoopbackClient` drives the service
  in-process through the same codec, deterministically.  The campaign
  simulation runs on it, so simulation and deployment share one code
  path; :mod:`repro.service.rpc` provides the real socket transport.
"""

from __future__ import annotations

import asyncio
import hmac
import json
import logging
import re
import secrets
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Type, Union

import numpy as np

from repro.core.engine import DEFAULT_CHUNK_S, ProtectionEngine
from repro.core.split import split_fixed_time
from repro.core.trace import Trace
from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    ProtocolError,
    ReproError,
    ServiceError,
)
from repro.service.client import UploadChunk
from repro.service.proxy import MoodProxy, PseudonymProvider
from repro.service.server import CollectionServer
from repro.stream import StreamConfig, StreamHub

#: Wire protocol version; bumped on any incompatible message change.
#: (The optional request-id tag and the per-piece ``original_records``
#: count are backward-compatible additions: peers that predate them
#: ignore unknown frame/body keys.)
WIRE_VERSION = 1

#: The negotiated binary framing (length-prefixed, columnar ndarray
#: payloads).  Never spoken unsolicited: a connection only switches to
#: v2 after a ``hello_request``/``hello_response`` exchange over v1
#: JSON framing, so a v1-only peer never sees a v2 frame.
WIRE_VERSION_V2 = 2

#: Every protocol version this build can speak, ascending.
SUPPORTED_WIRE_VERSIONS: Tuple[int, ...] = (WIRE_VERSION, WIRE_VERSION_V2)

#: A request/response correlation tag: JSON-representable scalar only.
RequestId = Union[int, str]

logger = logging.getLogger("repro.service.api")


# ---------------------------------------------------------------------------
# Shared-secret auth (HMAC-blake2b challenge/response)
# ---------------------------------------------------------------------------


def new_auth_nonce() -> str:
    """A fresh unpredictable challenge nonce (hex)."""
    return secrets.token_hex(16)


def auth_proof(key: bytes, nonce: str) -> str:
    """The handshake proof: ``HMAC-blake2b(key, nonce)`` as hex.

    The nonce is unpredictable per connection, so a captured proof is
    useless for replay; the key itself never crosses the wire.
    """
    if not isinstance(key, (bytes, bytearray)) or not key:
        raise ConfigurationError("auth key must be non-empty bytes")
    return hmac.new(bytes(key), nonce.encode("utf-8"), "blake2b").hexdigest()


def verify_auth_proof(key: bytes, nonce: str, proof: Any) -> bool:
    """Constant-time check of a peer's *proof* for *nonce*."""
    if not isinstance(proof, str):
        return False
    return hmac.compare_digest(auth_proof(key, nonce), proof)


def load_auth_key(path: Any) -> bytes:
    """The shared secret from a key file (surrounding whitespace stripped).

    The file's bytes **are** the key — generate one with e.g.
    ``python -c "import secrets; print(secrets.token_hex(32))" > mood.key``
    and distribute it to the server (``repro serve --auth-key-file``) and
    every client (``service.auth_key_file`` in the config).
    """
    try:
        with open(path, "rb") as f:
            key = f.read().strip()
    except OSError as exc:
        raise ConfigurationError(f"cannot read auth key file {path!r}: {exc}") from exc
    if not key:
        raise ConfigurationError(f"auth key file {path!r} is empty")
    return key


def resolve_auth_key(
    auth_key: Any = None, auth_key_file: Any = None
) -> Optional[bytes]:
    """The one resolution rule for the two key spellings.

    ``auth_key`` is the literal secret (str, utf-8-encoded, or bytes);
    ``auth_key_file`` is a path whose stripped bytes are the secret.
    Exactly one may be given; both ``None`` means "no auth".  Every
    consumer (CLI flags, ``ProtectionConfig.service``, the remote
    executor spec) funnels through here so the semantics cannot drift.
    """
    if auth_key is not None and auth_key_file is not None:
        raise ConfigurationError("give auth_key or auth_key_file, not both")
    if auth_key_file is not None:
        return load_auth_key(auth_key_file)
    if auth_key is None:
        return None
    key = (
        bytes(auth_key)
        if isinstance(auth_key, (bytes, bytearray))
        else str(auth_key).encode("utf-8")
    )
    if not key:
        raise ConfigurationError("auth_key must be non-empty")
    return key


# ---------------------------------------------------------------------------
# Trace wire form
# ---------------------------------------------------------------------------


def trace_to_wire(trace: Trace) -> Dict[str, Any]:
    """*trace* as a plain JSON-serialisable dict (exact float round-trip)."""
    # ndarray.tolist() yields exact Python floats (same shortest-repr
    # round-trip) without a per-element Python loop — this runs once per
    # trace per message, the wire hot path.
    return {
        "user_id": trace.user_id,
        "t": trace.timestamps.tolist(),
        "lat": trace.lats.tolist(),
        "lng": trace.lngs.tolist(),
    }


def trace_from_wire(data: Any) -> Trace:
    """Rebuild a :class:`Trace` from its wire dict."""
    if not isinstance(data, dict):
        raise ProtocolError(f"trace body must be an object, got {type(data).__name__}")
    missing = {"user_id", "t", "lat", "lng"} - set(data)
    if missing:
        raise ProtocolError(f"trace body is missing keys {sorted(missing)}")
    try:
        return Trace(str(data["user_id"]), data["t"], data["lat"], data["lng"])
    except (TypeError, ValueError, ReproError) as exc:
        raise ProtocolError(f"malformed trace on the wire: {exc}") from exc


# ---------------------------------------------------------------------------
# v2 columnar payload blocks
# ---------------------------------------------------------------------------

#: Explicit little-endian dtypes so a v2 frame means the same bytes on
#: every host.  float64 carries coordinates/timestamps; int64 carries
#: ordinals (with an inline-JSON fallback for values that overflow it).
_V2_DTYPES: Dict[str, "np.dtype"] = {
    "<f8": np.dtype("<f8"),
    "<i8": np.dtype("<i8"),
}


class BlockWriter:
    """Collects the columnar payload blocks of one v2 binary frame.

    ``to_body_v2`` implementations call :meth:`add` with a 1-D array and
    embed the returned ``{"$blk": n}`` ref where the v1 body would
    inline a JSON list; the frame encoder concatenates the raw
    little-endian bytes after the JSON header, so no per-element Python
    object or float repr is ever built on the hot path.
    """

    def __init__(self) -> None:
        self._arrays: List[Tuple[str, "np.ndarray"]] = []

    def add(self, values: Any, dtype: str = "<f8") -> Dict[str, int]:
        if dtype not in _V2_DTYPES:
            raise MessageEncodeError(f"unsupported v2 block dtype {dtype!r}")
        arr = np.ascontiguousarray(values, dtype=_V2_DTYPES[dtype])
        if arr.ndim != 1:
            raise MessageEncodeError("v2 payload blocks must be one-dimensional")
        if dtype == "<f8" and not np.isfinite(arr).all():
            # Same contract as v1's allow_nan=False JSON encode: a
            # non-finite coordinate is a sender-side bug, never bytes
            # on the wire.
            raise MessageEncodeError(
                "payload contains a non-finite float (NaN/Infinity), which "
                "has no wire representation"
            )
        self._arrays.append((dtype, arr))
        return {"$blk": len(self._arrays) - 1}

    def spec(self) -> List[List[Any]]:
        """The header's ``"blocks"`` entry: ``[[dtype, count], ...]``."""
        return [[dtype, int(arr.shape[0])] for dtype, arr in self._arrays]

    def payload(self) -> bytes:
        return b"".join(arr.tobytes() for _, arr in self._arrays)


def split_blocks(spec: Any, payload: "memoryview") -> List["np.ndarray"]:
    """Decode a v2 frame's payload into its arrays (zero-copy).

    Each array is an ``np.frombuffer`` view into *payload* — read-only,
    no per-element objects — exactly the form :class:`Trace` accepts
    without copying.
    """
    if not isinstance(spec, list):
        raise ProtocolError("v2 block spec must be a list")
    blocks: List["np.ndarray"] = []
    offset = 0
    for entry in spec:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
            or not isinstance(entry[1], int)
            or isinstance(entry[1], bool)
            or entry[1] < 0
        ):
            raise ProtocolError(f"malformed v2 block spec entry {entry!r}")
        dtype_str, count = entry
        dtype = _V2_DTYPES.get(dtype_str)
        if dtype is None:
            raise ProtocolError(f"unsupported v2 block dtype {dtype_str!r}")
        nbytes = count * dtype.itemsize
        if offset + nbytes > len(payload):
            raise ProtocolError(
                f"v2 payload truncated: block needs {nbytes} bytes at "
                f"offset {offset}, payload has {len(payload)}"
            )
        blocks.append(np.frombuffer(payload, dtype=dtype, count=count, offset=offset))
        offset += nbytes
    if offset != len(payload):
        raise ProtocolError(
            f"v2 payload has {len(payload) - offset} trailing bytes "
            f"beyond the declared blocks"
        )
    return blocks


def take_block(
    ref: Any, blocks: List["np.ndarray"], dtype: str = "<f8"
) -> "np.ndarray":
    """Resolve a body's ``{"$blk": n}`` ref against the frame's blocks."""
    if not isinstance(ref, dict) or set(ref) != {"$blk"}:
        raise ProtocolError(f"expected a block ref, got {type(ref).__name__}")
    index = ref["$blk"]
    if not isinstance(index, int) or isinstance(index, bool):
        raise ProtocolError(f"block ref index must be an int, got {index!r}")
    if not 0 <= index < len(blocks):
        raise ProtocolError(
            f"block ref {index} out of range (frame has {len(blocks)} blocks)"
        )
    arr = blocks[index]
    if arr.dtype != _V2_DTYPES[dtype]:
        raise ProtocolError(
            f"block {index} holds {arr.dtype.str}, expected {dtype}"
        )
    return arr


def trace_to_wire_v2(trace: Trace, blocks: BlockWriter) -> Dict[str, Any]:
    """*trace* as a v2 body: user id inline, columns as payload blocks."""
    return {
        "user_id": trace.user_id,
        "t": blocks.add(trace.timestamps),
        "lat": blocks.add(trace.lats),
        "lng": blocks.add(trace.lngs),
    }


def trace_from_wire_v2(data: Any, blocks: List["np.ndarray"]) -> Trace:
    """Rebuild a :class:`Trace` from its v2 body (zero-copy columns)."""
    if not isinstance(data, dict):
        raise ProtocolError(f"trace body must be an object, got {type(data).__name__}")
    missing = {"user_id", "t", "lat", "lng"} - set(data)
    if missing:
        raise ProtocolError(f"trace body is missing keys {sorted(missing)}")
    try:
        return Trace(
            str(data["user_id"]),
            take_block(data["t"], blocks),
            take_block(data["lat"], blocks),
            take_block(data["lng"], blocks),
        )
    except (TypeError, ValueError, ReproError) as exc:
        raise ProtocolError(f"malformed trace on the wire: {exc}") from exc


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PublishedPiece:
    """Wire form of one published sub-trace (raw original never leaves).

    ``original_records`` is the record count of the raw sub-trace this
    piece protects — a count, never coordinates — so a remote caller can
    weight distortion and data-loss readouts exactly like a local one.
    ``None`` means "same as the published trace" (every built-in LPPM is
    record-preserving), which also keeps old peers' bodies decodable.
    """

    pseudonym: str
    mechanism: str
    distortion_m: float
    trace: Trace
    original_records: Optional[int] = None

    @property
    def records_protected(self) -> int:
        """Record count of the raw sub-trace behind this piece."""
        if self.original_records is not None:
            return self.original_records
        return len(self.trace)

    def to_body(self) -> Dict[str, Any]:
        return {
            "pseudonym": self.pseudonym,
            "mechanism": self.mechanism,
            "distortion_m": self.distortion_m,
            "trace": trace_to_wire(self.trace),
            "original_records": self.records_protected,
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "PublishedPiece":
        trace = trace_from_wire(body["trace"])
        raw = body.get("original_records")
        return cls(
            pseudonym=str(body["pseudonym"]),
            mechanism=str(body["mechanism"]),
            distortion_m=float(body["distortion_m"]),
            trace=trace,
            original_records=len(trace) if raw is None else int(raw),
        )

    def to_body_v2(self, blocks: "BlockWriter") -> Dict[str, Any]:
        body = self.to_body()
        body["trace"] = trace_to_wire_v2(self.trace, blocks)
        return body

    @classmethod
    def from_body_v2(
        cls, body: Dict[str, Any], blocks: List["np.ndarray"]
    ) -> "PublishedPiece":
        trace = trace_from_wire_v2(body["trace"], blocks)
        raw = body.get("original_records")
        return cls(
            pseudonym=str(body["pseudonym"]),
            mechanism=str(body["mechanism"]),
            distortion_m=float(body["distortion_m"]),
            trace=trace,
            original_records=len(trace) if raw is None else int(raw),
        )


@dataclass(frozen=True)
class ProtectRequest:
    """Run the MooD cascade on one trace; nothing is ingested server-side."""

    trace: Trace
    #: Pre-chunk into daily windows first (the §4.5 crowdsensing mode).
    daily: bool = False
    chunk_s: float = DEFAULT_CHUNK_S

    def to_body(self) -> Dict[str, Any]:
        return {
            "trace": trace_to_wire(self.trace),
            "daily": bool(self.daily),
            "chunk_s": float(self.chunk_s),
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "ProtectRequest":
        return cls(
            trace=trace_from_wire(body["trace"]),
            daily=bool(body.get("daily", False)),
            chunk_s=float(body.get("chunk_s", DEFAULT_CHUNK_S)),
        )

    def to_body_v2(self, blocks: "BlockWriter") -> Dict[str, Any]:
        return {
            "trace": trace_to_wire_v2(self.trace, blocks),
            "daily": bool(self.daily),
            "chunk_s": float(self.chunk_s),
        }

    @classmethod
    def from_body_v2(
        cls, body: Dict[str, Any], blocks: List["np.ndarray"]
    ) -> "ProtectRequest":
        return cls(
            trace=trace_from_wire_v2(body["trace"], blocks),
            daily=bool(body.get("daily", False)),
            chunk_s=float(body.get("chunk_s", DEFAULT_CHUNK_S)),
        )


@dataclass(frozen=True)
class ProtectResponse:
    """Published pieces and erasure counts for one protected trace."""

    user_id: str
    pieces: Tuple[PublishedPiece, ...]
    erased_records: int
    original_records: int

    @property
    def data_loss(self) -> float:
        if self.original_records == 0:
            return 0.0
        return self.erased_records / self.original_records

    def to_body(self) -> Dict[str, Any]:
        return {
            "user_id": self.user_id,
            "pieces": [p.to_body() for p in self.pieces],
            "erased_records": self.erased_records,
            "original_records": self.original_records,
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "ProtectResponse":
        return cls(
            user_id=str(body["user_id"]),
            pieces=tuple(PublishedPiece.from_body(p) for p in body["pieces"]),
            erased_records=int(body["erased_records"]),
            original_records=int(body["original_records"]),
        )

    def to_body_v2(self, blocks: "BlockWriter") -> Dict[str, Any]:
        return {
            "user_id": self.user_id,
            "pieces": [p.to_body_v2(blocks) for p in self.pieces],
            "erased_records": self.erased_records,
            "original_records": self.original_records,
        }

    @classmethod
    def from_body_v2(
        cls, body: Dict[str, Any], blocks: List["np.ndarray"]
    ) -> "ProtectResponse":
        return cls(
            user_id=str(body["user_id"]),
            pieces=tuple(
                PublishedPiece.from_body_v2(p, blocks) for p in body["pieces"]
            ),
            erased_records=int(body["erased_records"]),
            original_records=int(body["original_records"]),
        )


@dataclass(frozen=True)
class UploadRequest:
    """The middleware path: protect one daily chunk and ingest the pieces."""

    trace: Trace
    day_index: int = 0

    def to_body(self) -> Dict[str, Any]:
        return {"trace": trace_to_wire(self.trace), "day_index": int(self.day_index)}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "UploadRequest":
        return cls(
            trace=trace_from_wire(body["trace"]),
            day_index=int(body.get("day_index", 0)),
        )

    def to_body_v2(self, blocks: "BlockWriter") -> Dict[str, Any]:
        return {
            "trace": trace_to_wire_v2(self.trace, blocks),
            "day_index": int(self.day_index),
        }

    @classmethod
    def from_body_v2(
        cls, body: Dict[str, Any], blocks: List["np.ndarray"]
    ) -> "UploadRequest":
        return cls(
            trace=trace_from_wire_v2(body["trace"], blocks),
            day_index=int(body.get("day_index", 0)),
        )


@dataclass(frozen=True)
class UploadResponse:
    """Receipt for one upload: what was published, what was dropped."""

    user_id: str
    pseudonyms: Tuple[str, ...]
    published_records: int
    erased_records: int

    def to_body(self) -> Dict[str, Any]:
        return {
            "user_id": self.user_id,
            "pseudonyms": list(self.pseudonyms),
            "published_records": self.published_records,
            "erased_records": self.erased_records,
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "UploadResponse":
        return cls(
            user_id=str(body["user_id"]),
            pseudonyms=tuple(str(p) for p in body["pseudonyms"]),
            published_records=int(body["published_records"]),
            erased_records=int(body["erased_records"]),
        )


@dataclass(frozen=True)
class QueryRequest:
    """Spatial analytics over the collected (protected) corpus.

    ``kind``:

    * ``"count"`` — records in the cell containing ``(lat, lng)``;
    * ``"top_cells"`` — the ``k`` busiest cells.
    """

    kind: str = "count"
    lat: Optional[float] = None
    lng: Optional[float] = None
    k: int = 10

    def to_body(self) -> Dict[str, Any]:
        return {"kind": self.kind, "lat": self.lat, "lng": self.lng, "k": self.k}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "QueryRequest":
        lat = body.get("lat")
        lng = body.get("lng")
        return cls(
            kind=str(body.get("kind", "count")),
            lat=None if lat is None else float(lat),
            lng=None if lng is None else float(lng),
            k=int(body.get("k", 10)),
        )


@dataclass(frozen=True)
class QueryResponse:
    """Answer to a :class:`QueryRequest`."""

    kind: str
    count: Optional[int] = None
    #: ``(cell_ix, cell_iy, count)`` rows for ``top_cells``.
    cells: Tuple[Tuple[int, int, int], ...] = ()

    def to_body(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "cells": [list(row) for row in self.cells],
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "QueryResponse":
        count = body.get("count")
        return cls(
            kind=str(body["kind"]),
            count=None if count is None else int(count),
            cells=tuple(
                (int(ix), int(iy), int(n)) for ix, iy, n in body.get("cells", [])
            ),
        )


@dataclass(frozen=True)
class StatsRequest:
    """Ask for the proxy's and server's operational counters."""

    def to_body(self) -> Dict[str, Any]:
        return {}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "StatsRequest":
        return cls()


@dataclass(frozen=True)
class StatsResponse:
    """Operational counters (plain dicts of the stats dataclasses)."""

    proxy: Dict[str, Any] = field(default_factory=dict)
    server: Dict[str, Any] = field(default_factory=dict)
    #: Streaming-ingestion counters, including per-reason overflow
    #: events (a v1-compatible body addition: old peers ignore it).
    stream: Dict[str, Any] = field(default_factory=dict)
    #: Seconds since the serving process constructed its service, and
    #: the protocol/build versions it speaks — v1-compatible body
    #: additions so ``repro top`` can label rows; old peers ignore
    #: them and old replies decode with the defaults.
    uptime_s: Optional[float] = None
    versions: Dict[str, Any] = field(default_factory=dict)

    def to_body(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "proxy": dict(self.proxy),
            "server": dict(self.server),
            "stream": dict(self.stream),
            "versions": dict(self.versions),
        }
        if self.uptime_s is not None:
            body["uptime_s"] = self.uptime_s
        return body

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "StatsResponse":
        uptime = body.get("uptime_s")
        return cls(
            proxy=dict(body["proxy"]),
            server=dict(body["server"]),
            stream=dict(body.get("stream", {})),
            uptime_s=None if uptime is None else float(uptime),
            versions=dict(body.get("versions", {})),
        )


# -- streaming ingestion (v1-compatible vocabulary additions) --------------


@dataclass(frozen=True)
class StreamOpen:
    """Open (or resume) one user's record stream.

    ``resume=True`` re-attaches to a surviving session after a
    reconnect: the reply's watermark tells the client the ordinal to
    resend from.  Window parameters are server defaults unless given.
    """

    user_id: str
    window: Optional[str] = None  # "tumbling" | "session" (None: server default)
    window_s: Optional[float] = None
    gap_s: Optional[float] = None
    resume: bool = False

    def to_body(self) -> Dict[str, Any]:
        return {
            "user_id": self.user_id,
            "window": self.window,
            "window_s": self.window_s,
            "gap_s": self.gap_s,
            "resume": bool(self.resume),
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "StreamOpen":
        window = body.get("window")
        window_s = body.get("window_s")
        gap_s = body.get("gap_s")
        return cls(
            user_id=str(body["user_id"]),
            window=None if window is None else str(window),
            window_s=None if window_s is None else float(window_s),
            gap_s=None if gap_s is None else float(gap_s),
            resume=bool(body.get("resume", False)),
        )


@dataclass(frozen=True)
class StreamOpened:
    """Session attached.  ``watermark`` is the protected-and-durable
    frontier (-1 for a fresh session); ``next_ordinal`` the first
    ordinal the server has *not* buffered — resend from ``watermark+1``
    after a reconnect (duplicates are deduplicated server-side)."""

    user_id: str
    watermark: int
    next_ordinal: int
    resumed: bool = False

    def to_body(self) -> Dict[str, Any]:
        return {
            "user_id": self.user_id,
            "watermark": int(self.watermark),
            "next_ordinal": int(self.next_ordinal),
            "resumed": bool(self.resumed),
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "StreamOpened":
        return cls(
            user_id=str(body["user_id"]),
            watermark=int(body["watermark"]),
            next_ordinal=int(body["next_ordinal"]),
            resumed=bool(body.get("resumed", False)),
        )


@dataclass(frozen=True)
class StreamRecord:
    """One batch of records: ``(ordinal, t, lat, lng)`` rows, ordinal-
    and time-ordered.  Ordinals are client-assigned, contiguous from 0
    per session — they are the currency of the watermark contract."""

    user_id: str
    records: Tuple[Tuple[int, float, float, float], ...]

    def to_body(self) -> Dict[str, Any]:
        return {
            "user_id": self.user_id,
            "records": [[int(o), float(t), float(lat), float(lng)]
                        for o, t, lat, lng in self.records],
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "StreamRecord":
        return cls(
            user_id=str(body["user_id"]),
            records=tuple(
                (int(row[0]), float(row[1]), float(row[2]), float(row[3]))
                for row in body["records"]
            ),
        )

    def to_body_v2(self, blocks: "BlockWriter") -> Dict[str, Any]:
        ordinals = [int(o) for o, _, _, _ in self.records]
        # Ordinals ride an int64 block unless one overflows it (they are
        # client-assigned and unbounded by contract) — then they stay
        # inline JSON, which carries arbitrary-precision ints.
        if all(-(2**63) <= o < 2**63 for o in ordinals):
            o_body: Any = blocks.add(ordinals, dtype="<i8")
        else:
            o_body = ordinals
        return {
            "user_id": self.user_id,
            "o": o_body,
            "t": blocks.add([float(t) for _, t, _, _ in self.records]),
            "lat": blocks.add([float(lat) for _, _, lat, _ in self.records]),
            "lng": blocks.add([float(lng) for _, _, _, lng in self.records]),
        }

    @classmethod
    def from_body_v2(
        cls, body: Dict[str, Any], blocks: List["np.ndarray"]
    ) -> "StreamRecord":
        raw_o = body["o"]
        if isinstance(raw_o, list):
            ordinals = [int(o) for o in raw_o]
        else:
            ordinals = take_block(raw_o, blocks, dtype="<i8").tolist()
        ts = take_block(body["t"], blocks).tolist()
        lats = take_block(body["lat"], blocks).tolist()
        lngs = take_block(body["lng"], blocks).tolist()
        if not (len(ordinals) == len(ts) == len(lats) == len(lngs)):
            raise ProtocolError("stream_record v2 columns disagree on length")
        return cls(
            user_id=str(body["user_id"]),
            records=tuple(zip(ordinals, ts, lats, lngs)),
        )


@dataclass(frozen=True)
class StreamAck:
    """Receipt for one record batch.

    ``accepted`` counts records consumed (including deduplicated
    resends); ``status`` is ``"ok"`` or the overflow action taken
    (``"blocked"``/``"shed"``/``"degraded"``) with its machine-readable
    ``reason`` code.  ``blocked`` means the batch tail was rejected:
    resend from ``next_ordinal`` after backing off."""

    user_id: str
    accepted: int
    next_ordinal: int
    watermark: int
    status: str = "ok"
    reason: str = ""

    def to_body(self) -> Dict[str, Any]:
        return {
            "user_id": self.user_id,
            "accepted": int(self.accepted),
            "next_ordinal": int(self.next_ordinal),
            "watermark": int(self.watermark),
            "status": self.status,
            "reason": self.reason,
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "StreamAck":
        return cls(
            user_id=str(body["user_id"]),
            accepted=int(body["accepted"]),
            next_ordinal=int(body["next_ordinal"]),
            watermark=int(body["watermark"]),
            status=str(body.get("status", "ok")),
            reason=str(body.get("reason", "")),
        )


@dataclass(frozen=True)
class StreamFlush:
    """Ack the client's durable frontier and fetch retained pieces.

    ``acked`` is the highest watermark the client has durably consumed
    (piece-log entries at or below it are pruned server-side; -1 acks
    nothing).  ``close_window=True`` force-closes and protects the open
    window first — the end-of-stream flush, after which the returned
    watermark covers every record sent."""

    user_id: str
    acked: int = -1
    close_window: bool = False

    def to_body(self) -> Dict[str, Any]:
        return {
            "user_id": self.user_id,
            "acked": int(self.acked),
            "close_window": bool(self.close_window),
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "StreamFlush":
        return cls(
            user_id=str(body["user_id"]),
            acked=int(body.get("acked", -1)),
            close_window=bool(body.get("close_window", False)),
        )


@dataclass(frozen=True)
class StreamFlushed:
    """The flush receipt: exactly which ordinals are protected-and-
    durable (``watermark``), plus the published pieces the client has
    not acknowledged yet.  Re-flushing after a lost reply returns the
    same pieces — flush is idempotent until acked."""

    user_id: str
    watermark: int
    pieces: Tuple[PublishedPiece, ...] = ()
    erased_records: int = 0
    #: Piece-log entries shed under ``overflow.piece_log_shed`` (their
    #: pieces stayed durable server-side, only the wire copies are gone).
    pieces_dropped: int = 0

    def to_body(self) -> Dict[str, Any]:
        return {
            "user_id": self.user_id,
            "watermark": int(self.watermark),
            "pieces": [p.to_body() for p in self.pieces],
            "erased_records": int(self.erased_records),
            "pieces_dropped": int(self.pieces_dropped),
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "StreamFlushed":
        return cls(
            user_id=str(body["user_id"]),
            watermark=int(body["watermark"]),
            pieces=tuple(PublishedPiece.from_body(p) for p in body.get("pieces", [])),
            erased_records=int(body.get("erased_records", 0)),
            pieces_dropped=int(body.get("pieces_dropped", 0)),
        )


@dataclass(frozen=True)
class StreamClose:
    """End one user's stream: flush the open window, retire the session."""

    user_id: str

    def to_body(self) -> Dict[str, Any]:
        return {"user_id": self.user_id}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "StreamClose":
        return cls(user_id=str(body["user_id"]))


@dataclass(frozen=True)
class StreamClosed:
    """Final session tally (flush before closing to fetch the last
    window's pieces — close returns counters, not payloads)."""

    user_id: str
    watermark: int
    records_in: int = 0
    records_shed: int = 0
    erased_records: int = 0
    pieces_published: int = 0
    windows_closed: int = 0

    def to_body(self) -> Dict[str, Any]:
        return {
            "user_id": self.user_id,
            "watermark": int(self.watermark),
            "records_in": int(self.records_in),
            "records_shed": int(self.records_shed),
            "erased_records": int(self.erased_records),
            "pieces_published": int(self.pieces_published),
            "windows_closed": int(self.windows_closed),
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "StreamClosed":
        return cls(
            user_id=str(body["user_id"]),
            watermark=int(body["watermark"]),
            records_in=int(body.get("records_in", 0)),
            records_shed=int(body.get("records_shed", 0)),
            erased_records=int(body.get("erased_records", 0)),
            pieces_published=int(body.get("pieces_published", 0)),
            windows_closed=int(body.get("windows_closed", 0)),
        )


@dataclass(frozen=True)
class AuthRequest:
    """One leg of the shared-secret handshake (client → server).

    Without ``proof`` it asks for a challenge; with ``proof`` (the
    HMAC-blake2b of the server's nonce under the shared key, hex) it
    completes the handshake.  A v1-compatible vocabulary addition: the
    frame format is unchanged, servers without a key answer
    :class:`AuthResponse` immediately, so mixed deployments interoperate.
    """

    proof: Optional[str] = None

    def to_body(self) -> Dict[str, Any]:
        return {} if self.proof is None else {"proof": self.proof}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "AuthRequest":
        proof = body.get("proof")
        return cls(proof=None if proof is None else str(proof))


@dataclass(frozen=True)
class AuthChallenge:
    """Server → client: prove knowledge of the key over this nonce."""

    nonce: str

    def to_body(self) -> Dict[str, Any]:
        return {"nonce": self.nonce}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "AuthChallenge":
        return cls(nonce=str(body["nonce"]))


@dataclass(frozen=True)
class AuthResponse:
    """Server → client: the handshake is complete; the connection is
    authenticated (or the server never required auth)."""

    ok: bool = True

    def to_body(self) -> Dict[str, Any]:
        return {"ok": bool(self.ok)}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "AuthResponse":
        return cls(ok=bool(body.get("ok", True)))


class AuthHandshakeRefused(ReproError):
    """Internal: the peer answered a handshake leg with a non-``auth``
    error envelope (e.g. a pre-auth server's ``protocol: unknown message
    type``).  Never escapes the client SDKs — each transport converts it
    to its own failure class (sync: ``ServiceError``; async/cluster:
    ``TransportError``, so the cluster fails over)."""

    def __init__(self, reply: "ErrorEnvelope") -> None:
        super().__init__(f"[{reply.code}] {reply.message}")
        self.reply = reply


def client_auth_handshake(key: bytes):
    """Sans-IO driver for the client side of the auth handshake.

    A generator: yields the next :class:`AuthRequest` to send, receives
    the peer's reply via ``send()``, and returns when the connection is
    authenticated (or the server turns out to be keyless).  Raises
    :class:`~repro.errors.AuthenticationError` on a credential failure,
    :class:`AuthHandshakeRefused` on any other envelope, and
    :class:`~repro.errors.ProtocolError` on a vocabulary violation.
    Both socket clients drive this one state machine, so the protocol
    cannot drift between transports.
    """

    def refuse(reply: ErrorEnvelope) -> None:
        if reply.code == "auth":
            raise AuthenticationError(reply.message)
        raise AuthHandshakeRefused(reply)

    reply = yield AuthRequest()
    if isinstance(reply, AuthResponse):
        return  # keyless server: auth not required, nothing to prove
    if isinstance(reply, ErrorEnvelope):
        refuse(reply)
    if not isinstance(reply, AuthChallenge):
        raise ProtocolError(
            f"expected auth_challenge, got {type(reply).__name__}"
        )
    reply = yield AuthRequest(proof=auth_proof(key, reply.nonce))
    if isinstance(reply, ErrorEnvelope):
        refuse(reply)
    if not isinstance(reply, AuthResponse) or not reply.ok:
        raise ProtocolError(
            f"expected auth_response ok, got {type(reply).__name__}"
        )


@dataclass(frozen=True)
class HelloRequest:
    """Client → server: the wire versions this client can speak.

    Always sent as a JSON frame (tagged ``"v": 2`` so a pre-hello v1
    server rejects it with a version-mismatch envelope the client can
    downgrade on); a server that understands it answers
    :class:`HelloResponse` and the connection switches to the agreed
    version from the next frame on.
    """

    versions: Tuple[int, ...] = SUPPORTED_WIRE_VERSIONS

    def to_body(self) -> Dict[str, Any]:
        return {"versions": [int(v) for v in self.versions]}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "HelloRequest":
        return cls(
            versions=tuple(int(v) for v in body.get("versions", [WIRE_VERSION]))
        )


@dataclass(frozen=True)
class HelloResponse:
    """Server → client: the agreed wire version for this connection.

    ``version`` is the highest version both sides speak (``1`` when
    nothing higher is shared — v1 is the floor every peer speaks);
    ``versions`` lists everything the server supports, for operators.
    Frames after this reply travel in the agreed framing, both ways.
    """

    version: int
    versions: Tuple[int, ...] = SUPPORTED_WIRE_VERSIONS

    def to_body(self) -> Dict[str, Any]:
        return {
            "version": int(self.version),
            "versions": [int(v) for v in self.versions],
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "HelloResponse":
        return cls(
            version=int(body["version"]),
            versions=tuple(
                int(v) for v in body.get("versions", [WIRE_VERSION])
            ),
        )


def negotiate_wire_version(
    offered: Tuple[int, ...], supported: Tuple[int, ...]
) -> int:
    """The version a connection settles on: highest common, floor v1.

    Both the server's hello handler and the clients' downgrade logic
    call this one function, so the two sides cannot disagree about what
    a given exchange negotiates.
    """
    common = set(int(v) for v in offered) & set(int(v) for v in supported)
    return max(common, default=WIRE_VERSION)


def encode_hello_frame(
    hello: "HelloRequest", request_id: Optional[RequestId] = None
) -> bytes:
    """The negotiation frame both socket clients send after connecting.

    A JSON line deliberately tagged ``"v": 2``: a server that predates
    the hello verb trips over the *version* first and answers with a
    mismatch envelope naming what it speaks (the downgrade signal —
    see :func:`peer_versions_from_error`), while a current server's
    :func:`parse_frame_envelope` exempts ``hello_request`` from the
    version gate and negotiates.
    """
    frame: Dict[str, Any] = {"v": WIRE_VERSION_V2, "type": "hello_request"}
    if request_id is not None:
        if not isinstance(request_id, (int, str)) or isinstance(request_id, bool):
            raise MessageEncodeError(
                f"request id must be an int or str, got {type(request_id).__name__}"
            )
        frame["id"] = request_id
    frame["body"] = hello.to_body()
    text = json.dumps(frame, separators=(",", ":"), allow_nan=False)
    return (text + "\n").encode("utf-8")


_PEER_VERSIONS_RE = re.compile(r"speaks \[?([0-9][0-9,\s]*)\]?")


def peer_versions_from_error(message: str) -> Optional[Tuple[int, ...]]:
    """The versions a peer says it speaks, recovered from its version-
    mismatch error envelope.

    Understands both the PR-3-era wording (``... (this side speaks 1)``)
    and the current wording (``... this side speaks [1, 2]``), so a v2
    client can downgrade against any server generation instead of
    marking the connection broken.  ``None`` when *message* is not a
    version mismatch.
    """
    if "unsupported protocol version" not in message:
        return None
    match = _PEER_VERSIONS_RE.search(message)
    if match is None:
        return None
    tokens = match.group(1).replace(",", " ").split()
    try:
        return tuple(sorted({int(token) for token in tokens}))
    except ValueError:
        return None


@dataclass(frozen=True)
class ErrorEnvelope:
    """The one shape every service-side fault travels in.

    ``code`` is machine-readable (``"protocol"``, ``"bad_request"``,
    ``"unsupported"``, ``"auth"``, ``"internal"``); ``message`` is for
    humans.
    """

    code: str
    message: str

    def to_body(self) -> Dict[str, Any]:
        return {"code": self.code, "message": self.message}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "ErrorEnvelope":
        return cls(code=str(body["code"]), message=str(body["message"]))


# ---------------------------------------------------------------------------
# Cluster control plane (v1-compatible vocabulary additions)
# ---------------------------------------------------------------------------


def _member_entries(value: Any) -> Tuple[Dict[str, Any], ...]:
    """Normalise a wire ``members`` list: a tuple of plain dicts.

    Member entries travel as open dicts (``endpoint``, ``worker_id``,
    ``state``, ``capacity``, ``joined_epoch``, ``age_s``) rather than a
    fixed dataclass so the registry can grow fields without a protocol
    bump; consumers read keys defensively.
    """
    entries = []
    for entry in value:
        if not isinstance(entry, dict):
            raise ProtocolError(
                f"cluster member entry must be an object, got {type(entry).__name__}"
            )
        entries.append(dict(entry))
    return tuple(entries)


@dataclass(frozen=True)
class ClusterJoin:
    """Announce a worker endpoint to a coordinator's membership registry.

    ``endpoint`` is the address *other* peers should dial (``host:port``
    or ``unix:/path``) — the coordinator records it verbatim, it does
    not trust the connection's source address.  Joining is idempotent:
    re-announcing an alive member refreshes its liveness clock.
    """

    endpoint: str
    worker_id: str = ""
    capacity: int = 0

    def to_body(self) -> Dict[str, Any]:
        return {
            "endpoint": self.endpoint,
            "worker_id": self.worker_id,
            "capacity": self.capacity,
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "ClusterJoin":
        return cls(
            endpoint=str(body["endpoint"]),
            worker_id=str(body.get("worker_id", "")),
            capacity=int(body.get("capacity", 0)),
        )


@dataclass(frozen=True)
class ClusterJoined:
    """Join acknowledgement: the registry epoch and a membership snapshot."""

    accepted: bool
    epoch: int
    members: Tuple[Dict[str, Any], ...] = ()

    def to_body(self) -> Dict[str, Any]:
        return {
            "accepted": self.accepted,
            "epoch": self.epoch,
            "members": [dict(m) for m in self.members],
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "ClusterJoined":
        return cls(
            accepted=bool(body["accepted"]),
            epoch=int(body["epoch"]),
            members=_member_entries(body.get("members", [])),
        )


@dataclass(frozen=True)
class ClusterLeave:
    """Deregister an endpoint from the data plane (graceful departure).

    Leaving stops *new* shard dispatch to the member; requests already
    in flight on it are allowed to finish, preserving the
    never-replay-where-a-frame-may-have-reached rule.
    """

    endpoint: str
    reason: str = ""

    def to_body(self) -> Dict[str, Any]:
        return {"endpoint": self.endpoint, "reason": self.reason}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "ClusterLeave":
        return cls(
            endpoint=str(body["endpoint"]), reason=str(body.get("reason", ""))
        )


@dataclass(frozen=True)
class ClusterLeft:
    """Leave acknowledgement; ``removed`` is False for unknown members."""

    removed: bool
    epoch: int

    def to_body(self) -> Dict[str, Any]:
        return {"removed": self.removed, "epoch": self.epoch}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "ClusterLeft":
        return cls(removed=bool(body["removed"]), epoch=int(body["epoch"]))


@dataclass(frozen=True)
class ClusterHeartbeat:
    """Liveness refresh for a joined member (``inflight`` is advisory load)."""

    endpoint: str
    inflight: int = 0

    def to_body(self) -> Dict[str, Any]:
        return {"endpoint": self.endpoint, "inflight": self.inflight}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "ClusterHeartbeat":
        return cls(
            endpoint=str(body["endpoint"]), inflight=int(body.get("inflight", 0))
        )


@dataclass(frozen=True)
class ClusterHeartbeatAck:
    """Heartbeat reply; ``known=False`` tells the worker to re-join."""

    known: bool
    epoch: int

    def to_body(self) -> Dict[str, Any]:
        return {"known": self.known, "epoch": self.epoch}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "ClusterHeartbeatAck":
        return cls(known=bool(body["known"]), epoch=int(body["epoch"]))


@dataclass(frozen=True)
class ClusterMembershipRequest:
    """Ask the coordinator for its current membership view."""

    def to_body(self) -> Dict[str, Any]:
        return {}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "ClusterMembershipRequest":
        return cls()


@dataclass(frozen=True)
class ClusterMembershipResponse:
    """The registry snapshot elastic clients subscribe to.

    ``epoch`` increments on every join/leave, so a subscriber can skip
    diffing unchanged snapshots.
    """

    epoch: int
    members: Tuple[Dict[str, Any], ...] = ()

    def to_body(self) -> Dict[str, Any]:
        return {"epoch": self.epoch, "members": [dict(m) for m in self.members]}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "ClusterMembershipResponse":
        return cls(
            epoch=int(body["epoch"]),
            members=_member_entries(body.get("members", [])),
        )


@dataclass(frozen=True)
class MetricsRequest:
    """Ask one endpoint for its operator metrics (``repro top`` polls this)."""

    def to_body(self) -> Dict[str, Any]:
        return {}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "MetricsRequest":
        return cls()


@dataclass(frozen=True)
class MetricsResponse:
    """One endpoint's live operator metrics, grouped by subsystem.

    Every block is an open dict (same growth rule as member entries):

    * ``transport`` — socket-server counters from
      :meth:`~repro.service.rpc.ServiceServer.transport_stats`: queue
      depth (``inflight_requests``), in-flight bytes, byte budgets,
      slow-consumer evictions, requests served.  Empty when the service
      is not socket-fronted (loopback).
    * ``service`` — proxy + collection-server counters.
    * ``stream`` — the :class:`~repro.stream.StreamHub` stats block.
    * ``feature_cache`` — engine FeatureCache hits/misses/entries.
    * ``cluster`` — the local registry view (``epoch`` + ``members``).
    """

    uptime_s: float = 0.0
    versions: Dict[str, Any] = field(default_factory=dict)
    transport: Dict[str, Any] = field(default_factory=dict)
    service: Dict[str, Any] = field(default_factory=dict)
    stream: Dict[str, Any] = field(default_factory=dict)
    feature_cache: Dict[str, Any] = field(default_factory=dict)
    cluster: Dict[str, Any] = field(default_factory=dict)

    def to_body(self) -> Dict[str, Any]:
        return {
            "uptime_s": self.uptime_s,
            "versions": dict(self.versions),
            "transport": dict(self.transport),
            "service": dict(self.service),
            "stream": dict(self.stream),
            "feature_cache": dict(self.feature_cache),
            "cluster": dict(self.cluster),
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "MetricsResponse":
        return cls(
            uptime_s=float(body["uptime_s"]),
            versions=dict(body.get("versions", {})),
            transport=dict(body.get("transport", {})),
            service=dict(body.get("service", {})),
            stream=dict(body.get("stream", {})),
            feature_cache=dict(body.get("feature_cache", {})),
            cluster=dict(body.get("cluster", {})),
        )


# ---------------------------------------------------------------------------
# JSON-lines codec
# ---------------------------------------------------------------------------

#: slug <-> message class (the versioned vocabulary of the protocol).
MESSAGE_TYPES: Dict[str, Type[Any]] = {
    "protect_request": ProtectRequest,
    "protect_response": ProtectResponse,
    "upload_request": UploadRequest,
    "upload_response": UploadResponse,
    "query_request": QueryRequest,
    "query_response": QueryResponse,
    "stats_request": StatsRequest,
    "stats_response": StatsResponse,
    "stream_open": StreamOpen,
    "stream_opened": StreamOpened,
    "stream_record": StreamRecord,
    "stream_ack": StreamAck,
    "stream_flush": StreamFlush,
    "stream_flushed": StreamFlushed,
    "stream_close": StreamClose,
    "stream_closed": StreamClosed,
    "cluster_join": ClusterJoin,
    "cluster_joined": ClusterJoined,
    "cluster_leave": ClusterLeave,
    "cluster_left": ClusterLeft,
    "cluster_heartbeat": ClusterHeartbeat,
    "cluster_heartbeat_ack": ClusterHeartbeatAck,
    "cluster_membership_request": ClusterMembershipRequest,
    "cluster_membership_response": ClusterMembershipResponse,
    "metrics_request": MetricsRequest,
    "metrics_response": MetricsResponse,
    "auth_request": AuthRequest,
    "auth_challenge": AuthChallenge,
    "auth_response": AuthResponse,
    "hello_request": HelloRequest,
    "hello_response": HelloResponse,
    "error": ErrorEnvelope,
}

_SLUG_OF = {cls: slug for slug, cls in MESSAGE_TYPES.items()}

#: Any message of the protocol.
Message = Union[
    ProtectRequest,
    ProtectResponse,
    UploadRequest,
    UploadResponse,
    QueryRequest,
    QueryResponse,
    StatsRequest,
    StatsResponse,
    StreamOpen,
    StreamOpened,
    StreamRecord,
    StreamAck,
    StreamFlush,
    StreamFlushed,
    StreamClose,
    StreamClosed,
    ClusterJoin,
    ClusterJoined,
    ClusterLeave,
    ClusterLeft,
    ClusterHeartbeat,
    ClusterHeartbeatAck,
    ClusterMembershipRequest,
    ClusterMembershipResponse,
    MetricsRequest,
    MetricsResponse,
    AuthRequest,
    AuthChallenge,
    AuthResponse,
    HelloRequest,
    HelloResponse,
    ErrorEnvelope,
]


class MessageEncodeError(ProtocolError):
    """*This side's own* message could not be encoded (non-finite float,
    unregistered type, bad id).  A deterministic caller error raised
    before any frame is sent: retrying on another endpoint cannot help,
    so cluster clients propagate it instead of blaming the endpoint."""


def encode_message(
    message: Message, request_id: Optional[RequestId] = None
) -> bytes:
    """One ``\\n``-terminated JSON line for *message*.

    With *request_id*, the frame carries an ``"id"`` key so the peer can
    correlate the reply to this request even when replies come back out
    of order (concurrent per-connection handling).  Non-finite floats
    are a :class:`MessageEncodeError` (a :class:`~repro.errors.ProtocolError`):
    ``json.dumps`` would otherwise emit ``NaN``/``Infinity`` tokens,
    which are not JSON.
    """
    slug = _SLUG_OF.get(type(message))
    if slug is None:
        raise MessageEncodeError(f"{type(message).__name__} is not a wire message")
    frame: Dict[str, Any] = {"v": WIRE_VERSION, "type": slug}
    if request_id is not None:
        if not isinstance(request_id, (int, str)) or isinstance(request_id, bool):
            raise MessageEncodeError(
                f"request id must be an int or str, got {type(request_id).__name__}"
            )
        frame["id"] = request_id
    frame["body"] = message.to_body()
    try:
        text = json.dumps(frame, separators=(",", ":"), allow_nan=False)
    except ValueError as exc:
        raise MessageEncodeError(
            f"{slug} contains a non-finite float (NaN/Infinity), which has "
            f"no JSON encoding: {exc}"
        ) from exc
    return (text + "\n").encode("utf-8")


def parse_frame_envelope(
    line: Union[str, bytes]
) -> Tuple[Optional[RequestId], str, Type[Any], Dict[str, Any]]:
    """Validate a frame's envelope — version, type, id, body *shape* —
    without materialising the body.

    The cheap first stage of :func:`decode_frame`: it never builds
    message dataclasses (no :class:`Trace`, no numpy arrays), so a
    server can inspect a frame's type — e.g. to reject unauthenticated
    requests — before paying for its payload.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"wire frame is not valid UTF-8: {exc}") from exc
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON on the wire: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(f"wire frame must be an object, got {type(frame).__name__}")
    request_id = frame.get("id")
    if request_id is not None and (
        not isinstance(request_id, (int, str)) or isinstance(request_id, bool)
    ):
        # Silently downgrading to "untagged" would make the reply come
        # back without an id and leave the sender's pending future
        # hanging until timeout — reject loudly instead (mirroring the
        # encode side).  The bogus tag is not echoed.
        raise ProtocolError(
            f"request id must be an int or str, got {type(request_id).__name__}"
        )

    def fail(message: str) -> "ProtocolError":
        exc = ProtocolError(message)
        exc.request_id = request_id
        return exc

    version = frame.get("v")
    slug = frame.get("type")
    if version != WIRE_VERSION and slug != "hello_request":
        # hello_request is exempt: it deliberately arrives tagged with
        # the version the client *wants* so old servers reject it here
        # (and the client downgrades on their reply).  The error names
        # what both sides speak so the peer can fall back instead of
        # giving up — see peer_versions_from_error().
        raise fail(
            f"unsupported protocol version: peer sent {version!r}, "
            f"this side speaks {list(SUPPORTED_WIRE_VERSIONS)} "
            f"(JSON framing is v{WIRE_VERSION}; negotiate higher with "
            f"hello_request)"
        )
    cls = MESSAGE_TYPES.get(slug)
    if cls is None:
        # The full vocabulary stays out of the wire error: this envelope
        # reaches peers the server has not authenticated yet, and 30+
        # verb slugs is a free protocol map.  Operators get the list in
        # the server-side log instead.
        logger.info(
            "rejecting unknown message type %r; registered types: %s",
            slug,
            sorted(MESSAGE_TYPES),
        )
        raise fail(
            f"unknown message type {slug!r} (not one of this side's "
            f"{len(MESSAGE_TYPES)} registered types)"
        )
    body = frame.get("body")
    if not isinstance(body, dict):
        raise fail(f"message body must be an object, got {type(body).__name__}")
    return request_id, slug, cls, body


def materialize_frame(
    request_id: Optional[RequestId], slug: str, cls: Type[Any], body: Dict[str, Any]
) -> Message:
    """Second stage of :func:`decode_frame`: body dict → message."""
    try:
        return cls.from_body(body)
    except ProtocolError as exc:
        exc.request_id = request_id
        raise
    except (KeyError, TypeError, ValueError) as exc:
        fail = ProtocolError(f"malformed {slug} body: {exc}")
        fail.request_id = request_id
        raise fail from exc


def decode_frame(
    line: Union[str, bytes]
) -> Tuple[Optional[RequestId], Message]:
    """Parse one wire line into ``(request_id, message)``.

    ``request_id`` is ``None`` for untagged (legacy FIFO) frames.  On a
    malformed frame the raised :class:`~repro.errors.ProtocolError`
    carries a ``request_id`` attribute when the tag itself was readable,
    so error envelopes can still be correlated.
    """
    request_id, slug, cls, body = parse_frame_envelope(line)
    return request_id, materialize_frame(request_id, slug, cls, body)


def decode_message(line: Union[str, bytes]) -> Message:
    """Parse one wire line back into its message dataclass."""
    return decode_frame(line)[1]


def encode_reply(message: Message, request_id: Optional[RequestId] = None) -> bytes:
    """Encode a reply, downgrading encode failures to error envelopes.

    A reply that cannot be serialised (e.g. a non-finite float produced
    by the engine) must not kill the connection or leak a half-written
    frame: the peer gets a well-formed ``error`` envelope instead.
    """
    try:
        return encode_message(message, request_id=request_id)
    except ProtocolError as exc:
        return encode_message(
            ErrorEnvelope(code="internal", message=f"reply not encodable: {exc}"),
            request_id=request_id,
        )


# ---------------------------------------------------------------------------
# v2 binary framing
# ---------------------------------------------------------------------------

#: v2 frame magic.  ``M`` (0x4D) can never start a v1 frame (those are
#: JSON objects, first byte ``{``), so a peer reading with the wrong
#: framing fails fast instead of mis-parsing.
WIRE_MAGIC_V2 = b"MRB2"

#: After the magic: header length (uint32 LE), blocks length (uint64 LE).
_V2_PREFIX = struct.Struct("<IQ")

#: Total fixed prefix: magic + the two length fields (16 bytes).
V2_PREFIX_LEN = len(WIRE_MAGIC_V2) + _V2_PREFIX.size


def is_v2_frame(data: bytes) -> bool:
    """Whether *data* starts like a v2 binary frame (magic sniff)."""
    return bytes(data[: len(WIRE_MAGIC_V2)]) == WIRE_MAGIC_V2


def v2_frame_lengths(prefix: bytes) -> Tuple[int, int]:
    """``(header_len, blocks_len)`` from a frame's 16-byte prefix.

    Transports call this on the fixed prefix *before* reading the rest,
    so size caps and byte budgets are enforced on the frame's actual
    payload bytes without buffering an oversized frame first.
    """
    if len(prefix) < V2_PREFIX_LEN or not is_v2_frame(prefix):
        raise ProtocolError("not a v2 binary frame (bad magic)")
    header_len, blocks_len = _V2_PREFIX.unpack_from(prefix, len(WIRE_MAGIC_V2))
    return header_len, blocks_len


def encode_message_v2(
    message: Message, request_id: Optional[RequestId] = None
) -> bytes:
    """One v2 binary frame for *message*.

    Layout: ``MRB2 | header_len u32 | blocks_len u64 | header JSON |
    blocks``.  Trace-bearing messages put their float64/int64 columns in
    the blocks region (raw little-endian bytes, no per-element encode);
    every other message carries its v1 JSON body inside the header, so
    one framing speaks the whole vocabulary.
    """
    slug = _SLUG_OF.get(type(message))
    if slug is None:
        raise MessageEncodeError(f"{type(message).__name__} is not a wire message")
    header: Dict[str, Any] = {"v": WIRE_VERSION_V2, "type": slug}
    if request_id is not None:
        if not isinstance(request_id, (int, str)) or isinstance(request_id, bool):
            raise MessageEncodeError(
                f"request id must be an int or str, got {type(request_id).__name__}"
            )
        header["id"] = request_id
    blocks = BlockWriter()
    to_body_v2 = getattr(message, "to_body_v2", None)
    header["body"] = message.to_body() if to_body_v2 is None else to_body_v2(blocks)
    spec = blocks.spec()
    if spec:
        header["blocks"] = spec
    try:
        text = json.dumps(header, separators=(",", ":"), allow_nan=False)
    except ValueError as exc:
        raise MessageEncodeError(
            f"{slug} contains a non-finite float (NaN/Infinity), which has "
            f"no JSON encoding: {exc}"
        ) from exc
    head = text.encode("utf-8")
    payload = blocks.payload()
    return b"".join(
        (WIRE_MAGIC_V2, _V2_PREFIX.pack(len(head), len(payload)), head, payload)
    )


def parse_frame_v2(
    data: bytes,
) -> Tuple[Optional[RequestId], str, Type[Any], Dict[str, Any], List["np.ndarray"]]:
    """Envelope + payload blocks of one v2 frame, no dataclasses built.

    The v2 counterpart of :func:`parse_frame_envelope`: cheap enough to
    run before auth (blocks are zero-copy views, never materialised),
    and errors carry ``request_id`` when the tag was readable.
    """
    data = bytes(data) if isinstance(data, (bytearray, memoryview)) else data
    if not is_v2_frame(data):
        raise ProtocolError("not a v2 binary frame (bad magic)")
    if len(data) < V2_PREFIX_LEN:
        raise ProtocolError("v2 frame truncated inside its length prefix")
    header_len, blocks_len = v2_frame_lengths(data)
    expected = V2_PREFIX_LEN + header_len + blocks_len
    if len(data) != expected:
        raise ProtocolError(
            f"v2 frame length mismatch: prefix declares {expected} bytes, "
            f"got {len(data)}"
        )
    try:
        header = json.loads(data[V2_PREFIX_LEN : V2_PREFIX_LEN + header_len])
    except (UnicodeDecodeError, json.JSONDecodeError, ValueError) as exc:
        raise ProtocolError(f"invalid v2 frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(
            f"v2 frame header must be an object, got {type(header).__name__}"
        )
    request_id = header.get("id")
    if request_id is not None and (
        not isinstance(request_id, (int, str)) or isinstance(request_id, bool)
    ):
        raise ProtocolError(
            f"request id must be an int or str, got {type(request_id).__name__}"
        )

    def fail(message: str) -> "ProtocolError":
        exc = ProtocolError(message)
        exc.request_id = request_id
        return exc

    version = header.get("v")
    if version != WIRE_VERSION_V2:
        raise fail(
            f"unsupported protocol version: peer sent {version!r}, "
            f"this side speaks {list(SUPPORTED_WIRE_VERSIONS)} "
            f"(binary framing is v{WIRE_VERSION_V2})"
        )
    slug = header.get("type")
    cls = MESSAGE_TYPES.get(slug)
    if cls is None:
        logger.info(
            "rejecting unknown message type %r; registered types: %s",
            slug,
            sorted(MESSAGE_TYPES),
        )
        raise fail(
            f"unknown message type {slug!r} (not one of this side's "
            f"{len(MESSAGE_TYPES)} registered types)"
        )
    body = header.get("body")
    if not isinstance(body, dict):
        raise fail(f"message body must be an object, got {type(body).__name__}")
    try:
        parsed = split_blocks(
            header.get("blocks", []), memoryview(data)[V2_PREFIX_LEN + header_len :]
        )
    except ProtocolError as exc:
        raise fail(str(exc)) from exc
    return request_id, slug, cls, body, parsed


def materialize_frame_v2(
    request_id: Optional[RequestId],
    slug: str,
    cls: Type[Any],
    body: Dict[str, Any],
    blocks: List["np.ndarray"],
) -> Message:
    """Second stage of :func:`decode_frame_v2`: header body → message."""
    from_body_v2 = getattr(cls, "from_body_v2", None)
    try:
        if from_body_v2 is None:
            return cls.from_body(body)
        return from_body_v2(body, blocks)
    except ProtocolError as exc:
        exc.request_id = request_id
        raise
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        fail = ProtocolError(f"malformed {slug} body: {exc}")
        fail.request_id = request_id
        raise fail from exc


def decode_frame_v2(data: bytes) -> Tuple[Optional[RequestId], Message]:
    """Parse one v2 binary frame into ``(request_id, message)``."""
    request_id, slug, cls, body, blocks = parse_frame_v2(data)
    return request_id, materialize_frame_v2(request_id, slug, cls, body, blocks)


def encode_message_for(
    version: int, message: Message, request_id: Optional[RequestId] = None
) -> bytes:
    """Encode *message* in the framing a connection negotiated."""
    if version >= WIRE_VERSION_V2:
        return encode_message_v2(message, request_id=request_id)
    return encode_message(message, request_id=request_id)


def decode_frame_any(data: bytes) -> Tuple[Optional[RequestId], Message]:
    """Decode a frame of either framing (magic-sniffed)."""
    if is_v2_frame(data):
        return decode_frame_v2(data)
    return decode_frame(data)


def encode_reply_for(
    version: int, message: Message, request_id: Optional[RequestId] = None
) -> bytes:
    """Version-aware :func:`encode_reply` (failures become envelopes)."""
    try:
        return encode_message_for(version, message, request_id=request_id)
    except ProtocolError as exc:
        return encode_message_for(
            version,
            ErrorEnvelope(code="internal", message=f"reply not encodable: {exc}"),
            request_id=request_id,
        )


# ---------------------------------------------------------------------------
# The service facade
# ---------------------------------------------------------------------------


class ProtectionService:
    """Async facade over engine + proxy + collection server.

    One instance is one deployment of the middleware: it owns the proxy
    (cascade + session pseudonyms + operational counters) and the
    collection server (protected corpus + analytics).  All four verbs
    are coroutines; CPU-heavy protection runs on the event loop's
    default thread pool so a serving loop stays responsive.  Requests
    handled sequentially are fully deterministic — the loopback
    transport relies on that to keep campaign reports reproducible.

    Shared state (pseudonym counters, proxy stats, the collected
    corpus) is guarded by one service-wide mutex: the socket server
    multiplexes many connections onto one loop whose pool may run
    several protection bodies at once, and an unguarded
    ``SessionPseudonyms`` get/increment could hand two concurrent
    uploads of the same user the same pseudonym.  The lock is a plain
    :class:`threading.Lock` (not an asyncio one) because the service
    may be driven from different event loops over its lifetime and the
    mutation happens on pool threads.
    """

    def __init__(
        self,
        engine: ProtectionEngine,
        *,
        server: Optional[CollectionServer] = None,
        pseudonyms: Optional[PseudonymProvider] = None,
        stream: Optional[StreamConfig] = None,
        cluster: Optional[Any] = None,
    ) -> None:
        self.proxy = MoodProxy(engine, pseudonyms=pseudonyms)
        self.server = server if server is not None else CollectionServer()
        self.streams = StreamHub(self.proxy, sink=self.server.receive, config=stream)
        if cluster is None:
            # Lazy import: repro.cluster imports this module's messages.
            from repro.cluster.registry import ClusterRegistry

            cluster = ClusterRegistry()
        #: Membership registry — every deployment can act as the
        #: coordinator of a cluster; workers announce themselves with
        #: ``cluster_join`` and elastic clients poll
        #: ``cluster_membership_request``.
        self.cluster = cluster
        #: Set by :class:`~repro.service.rpc.ServiceServer` when this
        #: service is socket-fronted, so ``metrics`` can report queue
        #: depth and in-flight bytes.  Loopback deployments leave it
        #: None and the transport block comes back empty.
        self.transport_stats: Optional[Callable[[], Dict[str, Any]]] = None
        self.started_monotonic = time.monotonic()
        self._state_lock = threading.Lock()
        self._handlers = {
            ProtectRequest: self.protect,
            UploadRequest: self.upload,
            QueryRequest: self.query,
            StatsRequest: self.stats,
            StreamOpen: self.stream_open,
            StreamRecord: self.stream_record,
            StreamFlush: self.stream_flush,
            StreamClose: self.stream_close,
            ClusterJoin: self.cluster_join,
            ClusterLeave: self.cluster_leave,
            ClusterHeartbeat: self.cluster_heartbeat,
            ClusterMembershipRequest: self.cluster_membership,
            MetricsRequest: self.metrics,
            HelloRequest: self.hello,
        }

    @property
    def engine(self) -> ProtectionEngine:
        return self.proxy.engine

    # -- verbs -----------------------------------------------------------

    async def protect(self, request: ProtectRequest) -> ProtectResponse:
        """Run the cascade; return published pieces without ingesting."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._protect_sync, request)

    async def upload(self, request: UploadRequest) -> UploadResponse:
        """Protect one chunk and ingest its pieces into the server."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._upload_sync, request)

    async def query(self, request: QueryRequest) -> QueryResponse:
        """Answer a spatial analytics query over the collected corpus."""
        # Validate on the loop (cheap, lock-free); read on the pool —
        # waiting for the state lock must never stall the event loop.
        if request.kind not in ("count", "top_cells"):
            raise ConfigurationError(
                f"unknown query kind {request.kind!r}; choose from ('count', 'top_cells')"
            )
        if request.kind == "count" and (request.lat is None or request.lng is None):
            raise ConfigurationError("a 'count' query needs 'lat' and 'lng'")
        if request.kind == "top_cells" and request.k < 1:
            raise ConfigurationError(f"'top_cells' needs k >= 1, got {request.k}")
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._query_sync, request)

    async def stats(self, request: Optional[StatsRequest] = None) -> StatsResponse:
        """Proxy and server operational counters."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._stats_sync)

    # -- cluster control plane --------------------------------------------

    async def cluster_join(self, request: ClusterJoin) -> ClusterJoined:
        """Register (or refresh) a worker in the membership registry."""
        self.cluster.join(
            request.endpoint, worker_id=request.worker_id, capacity=request.capacity
        )
        epoch, members = self.cluster.snapshot()
        return ClusterJoined(accepted=True, epoch=epoch, members=members)

    async def cluster_leave(self, request: ClusterLeave) -> ClusterLeft:
        """Gracefully deregister a worker from the data plane."""
        removed = self.cluster.leave(request.endpoint, reason=request.reason)
        return ClusterLeft(removed=removed, epoch=self.cluster.epoch)

    async def cluster_heartbeat(
        self, request: ClusterHeartbeat
    ) -> ClusterHeartbeatAck:
        """Refresh a member's liveness clock; unknown members must re-join."""
        known = self.cluster.heartbeat(request.endpoint, inflight=request.inflight)
        return ClusterHeartbeatAck(known=known, epoch=self.cluster.epoch)

    async def cluster_membership(
        self, request: Optional[ClusterMembershipRequest] = None
    ) -> ClusterMembershipResponse:
        """The registry snapshot elastic clients subscribe to."""
        epoch, members = self.cluster.snapshot()
        return ClusterMembershipResponse(epoch=epoch, members=members)

    async def metrics(self, request: Optional[MetricsRequest] = None) -> MetricsResponse:
        """Live operator metrics for this endpoint (``repro top``)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._metrics_sync)

    async def hello(self, request: HelloRequest) -> HelloResponse:
        """Version negotiation, service-level.

        The socket server answers hellos at the transport layer (it owns
        the per-connection framing switch); this handler keeps the verb
        total for loopback and direct ``handle()`` callers, where no
        framing switch exists and the reply is purely informational.
        """
        return HelloResponse(
            version=negotiate_wire_version(request.versions, SUPPORTED_WIRE_VERSIONS),
            versions=SUPPORTED_WIRE_VERSIONS,
        )

    # -- streaming verbs --------------------------------------------------

    async def stream_open(self, request: StreamOpen) -> StreamOpened:
        """Open (or resume) one user's ingestion session."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._stream_open_sync, request)

    async def stream_record(self, request: StreamRecord) -> StreamAck:
        """Ingest one record batch; closed windows are protected inline."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._stream_record_sync, request)

    async def stream_flush(self, request: StreamFlush) -> StreamFlushed:
        """Ack the durable frontier and return unacknowledged pieces."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._stream_flush_sync, request)

    async def stream_close(self, request: StreamClose) -> StreamClosed:
        """Flush and retire one user's session."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._stream_close_sync, request)

    # -- sync bodies (run on the pool, under the state lock) -------------

    def _query_sync(self, request: QueryRequest) -> QueryResponse:
        if request.kind == "count":
            with self._state_lock:
                count = self.server.count_in_cell(request.lat, request.lng)
            return QueryResponse(kind="count", count=count)
        with self._state_lock:
            top = self.server.top_cells(request.k)
        return QueryResponse(
            kind="top_cells", cells=tuple((cell.ix, cell.iy, n) for cell, n in top)
        )

    def _versions(self) -> Dict[str, Any]:
        from repro import __version__

        return {
            "protocol": WIRE_VERSION,
            "protocols": list(SUPPORTED_WIRE_VERSIONS),
            "build": __version__,
        }

    def _stats_sync(self) -> StatsResponse:
        from dataclasses import asdict

        with self._state_lock:
            return StatsResponse(
                proxy=asdict(self.proxy.stats),
                server=asdict(self.server.stats),
                stream=self.streams.stats_dict(),
                uptime_s=time.monotonic() - self.started_monotonic,
                versions=self._versions(),
            )

    def _metrics_sync(self) -> MetricsResponse:
        from dataclasses import asdict

        transport = (
            dict(self.transport_stats())
            if self.transport_stats is not None
            else {}
        )
        cache = getattr(self.engine, "feature_cache", None)
        epoch, members = self.cluster.snapshot()
        with self._state_lock:
            service = {
                "proxy": asdict(self.proxy.stats),
                "server": asdict(self.server.stats),
            }
            stream = self.streams.stats_dict()
        return MetricsResponse(
            uptime_s=time.monotonic() - self.started_monotonic,
            versions=self._versions(),
            transport=transport,
            service=service,
            stream=stream,
            feature_cache=dict(cache.stats()) if cache is not None else {},
            cluster={"epoch": epoch, "members": [dict(m) for m in members]},
        )

    def _stream_open_sync(self, request: StreamOpen) -> StreamOpened:
        with self._state_lock:
            session, resumed = self.streams.open(
                request.user_id,
                window=request.window,
                window_s=request.window_s,
                gap_s=request.gap_s,
                resume=request.resume,
            )
            return StreamOpened(
                user_id=request.user_id,
                watermark=session.watermark,
                next_ordinal=session.next_ordinal,
                resumed=resumed,
            )

    def _stream_record_sync(self, request: StreamRecord) -> StreamAck:
        with self._state_lock:
            outcome = self.streams.ingest(request.user_id, request.records)
        return StreamAck(
            user_id=request.user_id,
            accepted=outcome.accepted,
            next_ordinal=outcome.next_ordinal,
            watermark=outcome.watermark,
            status=outcome.status,
            reason=outcome.reason,
        )

    def _stream_flush_sync(self, request: StreamFlush) -> StreamFlushed:
        with self._state_lock:
            outcome = self.streams.flush(
                request.user_id,
                acked=request.acked,
                close_window=request.close_window,
            )
        return StreamFlushed(
            user_id=request.user_id,
            watermark=outcome.watermark,
            pieces=tuple(
                PublishedPiece(
                    pseudonym=p.pseudonym,
                    mechanism=p.mechanism,
                    distortion_m=p.distortion_m,
                    trace=p.published,
                    original_records=len(p.original),
                )
                for p in outcome.pieces
            ),
            erased_records=outcome.erased_records,
            pieces_dropped=outcome.pieces_dropped,
        )

    def _stream_close_sync(self, request: StreamClose) -> StreamClosed:
        with self._state_lock:
            outcome = self.streams.close(request.user_id)
        return StreamClosed(
            user_id=request.user_id,
            watermark=outcome.watermark,
            records_in=outcome.records_in,
            records_shed=outcome.records_shed,
            erased_records=outcome.erased_records,
            pieces_published=outcome.pieces_published,
            windows_closed=outcome.windows_closed,
        )

    def drain_streams(self) -> Dict[str, int]:
        """Graceful-shutdown hook: flush every open stream window so the
        final watermarks cover everything clients sent (``repro serve``
        calls this on SIGTERM before exiting)."""
        with self._state_lock:
            return self.streams.drain()

    def _protect_sync(self, request: ProtectRequest) -> ProtectResponse:
        # The engine, pseudonym counters, and stats are shared mutable
        # state: one protection body runs at a time.
        trace = request.trace
        chunks = (
            split_fixed_time(trace, request.chunk_s) if request.daily else [trace]
        )
        pieces: List[PublishedPiece] = []
        erased = 0
        with self._state_lock:
            for i, chunk in enumerate(chunks):
                if len(chunk) == 0:
                    continue
                result = self.proxy.protect_chunk(UploadChunk(trace.user_id, i, chunk))
                erased += result.erased_records
                pieces.extend(
                    PublishedPiece(
                        pseudonym=p.pseudonym,
                        mechanism=p.mechanism,
                        distortion_m=p.distortion_m,
                        trace=p.published,
                        original_records=len(p.original),
                    )
                    for p in result.pieces
                )
        return ProtectResponse(
            user_id=trace.user_id,
            pieces=tuple(pieces),
            erased_records=erased,
            original_records=len(trace),
        )

    def _upload_sync(self, request: UploadRequest) -> UploadResponse:
        chunk = UploadChunk(request.trace.user_id, request.day_index, request.trace)
        published = 0
        pseudonyms: List[str] = []
        with self._state_lock:
            result = self.proxy.protect_chunk(chunk)
            for piece in result.pieces:
                self.server.receive(piece.published)
                pseudonyms.append(piece.pseudonym)
                published += len(piece.published)
        return UploadResponse(
            user_id=request.trace.user_id,
            pseudonyms=tuple(pseudonyms),
            published_records=published,
            erased_records=result.erased_records,
        )

    # -- dispatch --------------------------------------------------------

    async def handle(self, message: Message) -> Message:
        """Route one decoded request; faults become error envelopes."""
        handler = self._handlers.get(type(message))
        if handler is None:
            return ErrorEnvelope(
                code="unsupported",
                message=f"{type(message).__name__} is not a request this side serves",
            )
        try:
            return await handler(message)
        except ReproError as exc:
            return ErrorEnvelope(code="bad_request", message=str(exc))
        except Exception as exc:  # noqa: BLE001 - the envelope is the contract
            return ErrorEnvelope(
                code="internal", message=f"{type(exc).__name__}: {exc}"
            )

    async def handle_wire(self, line: Union[str, bytes]) -> bytes:
        """Decode one wire frame, handle it, encode the reply.

        Never raises: protocol violations come back as ``error`` frames,
        so a transport can pipe bytes blindly.  A tagged request's id is
        echoed on the reply (including error envelopes, whenever the tag
        itself was readable).  The framing is sniffed per frame — a v2
        binary frame gets a v2 binary reply, a v1 JSON line a v1 line —
        so both loopback generations share this one entry point.
        """
        raw = line.encode("utf-8") if isinstance(line, str) else bytes(line)
        version = WIRE_VERSION_V2 if is_v2_frame(raw) else WIRE_VERSION
        try:
            request_id, message = decode_frame_any(raw)
        except ProtocolError as exc:
            return encode_reply_for(
                version,
                ErrorEnvelope(code="protocol", message=str(exc)),
                request_id=getattr(exc, "request_id", None),
            )
        return encode_reply_for(
            version, await self.handle(message), request_id=request_id
        )


# ---------------------------------------------------------------------------
# Client SDK base + loopback transport
# ---------------------------------------------------------------------------


class ServiceClientBase:
    """Verb-level SDK shared by every transport.

    Subclasses implement :meth:`request` (one message in, one message
    out); the convenience methods add typed signatures and raise
    :class:`~repro.errors.ServiceError` on error envelopes.
    """

    def request(self, message: Message) -> Message:
        raise NotImplementedError

    def _ask(self, message: Message, expected: Type[Any]) -> Any:
        reply = self.request(message)
        if isinstance(reply, ErrorEnvelope):
            if reply.code == "auth":
                raise AuthenticationError(reply.message)
            raise ServiceError(reply.code, reply.message)
        if not isinstance(reply, expected):
            raise ProtocolError(
                f"expected {expected.__name__}, got {type(reply).__name__}"
            )
        return reply

    def protect(
        self, trace: Trace, daily: bool = False, chunk_s: float = DEFAULT_CHUNK_S
    ) -> ProtectResponse:
        return self._ask(
            ProtectRequest(trace=trace, daily=daily, chunk_s=chunk_s), ProtectResponse
        )

    def upload(self, trace: Trace, day_index: int = 0) -> UploadResponse:
        return self._ask(UploadRequest(trace=trace, day_index=day_index), UploadResponse)

    def query(self, request: QueryRequest) -> QueryResponse:
        return self._ask(request, QueryResponse)

    def query_count(self, lat: float, lng: float) -> int:
        reply = self.query(QueryRequest(kind="count", lat=lat, lng=lng))
        return int(reply.count or 0)

    def top_cells(self, k: int = 10) -> Tuple[Tuple[int, int, int], ...]:
        return self.query(QueryRequest(kind="top_cells", k=k)).cells

    def stats(self) -> StatsResponse:
        return self._ask(StatsRequest(), StatsResponse)

    # -- cluster control plane --------------------------------------------

    def cluster_join(
        self, endpoint: str, worker_id: str = "", capacity: int = 0
    ) -> ClusterJoined:
        return self._ask(
            ClusterJoin(endpoint=endpoint, worker_id=worker_id, capacity=capacity),
            ClusterJoined,
        )

    def cluster_leave(self, endpoint: str, reason: str = "") -> ClusterLeft:
        return self._ask(ClusterLeave(endpoint=endpoint, reason=reason), ClusterLeft)

    def cluster_heartbeat(
        self, endpoint: str, inflight: int = 0
    ) -> ClusterHeartbeatAck:
        return self._ask(
            ClusterHeartbeat(endpoint=endpoint, inflight=inflight),
            ClusterHeartbeatAck,
        )

    def cluster_membership(self) -> ClusterMembershipResponse:
        return self._ask(ClusterMembershipRequest(), ClusterMembershipResponse)

    def metrics(self) -> MetricsResponse:
        return self._ask(MetricsRequest(), MetricsResponse)

    # -- streaming verbs ---------------------------------------------------

    def stream_open(
        self,
        user_id: str,
        window: Optional[str] = None,
        window_s: Optional[float] = None,
        gap_s: Optional[float] = None,
        resume: bool = False,
    ) -> StreamOpened:
        return self._ask(
            StreamOpen(
                user_id=user_id,
                window=window,
                window_s=window_s,
                gap_s=gap_s,
                resume=resume,
            ),
            StreamOpened,
        )

    def stream_record(
        self, user_id: str, records: Tuple[Tuple[int, float, float, float], ...]
    ) -> StreamAck:
        return self._ask(
            StreamRecord(user_id=user_id, records=tuple(records)), StreamAck
        )

    def stream_flush(
        self, user_id: str, acked: int = -1, close_window: bool = False
    ) -> StreamFlushed:
        return self._ask(
            StreamFlush(user_id=user_id, acked=acked, close_window=close_window),
            StreamFlushed,
        )

    def stream_close(self, user_id: str) -> StreamClosed:
        return self._ask(StreamClose(user_id=user_id), StreamClosed)


class LoopbackClient(ServiceClientBase):
    """In-process transport: full codec round-trip, no sockets.

    Every request is encoded to its wire line, decoded by the service,
    handled on a private event loop, and the reply decoded back — the
    exact byte path of the socket transport minus the socket.  Requests
    run one at a time, so results are deterministic; the campaign
    simulation is built on this client.
    """

    def __init__(
        self, service: ProtectionService, wire_version: int = WIRE_VERSION
    ) -> None:
        if wire_version not in SUPPORTED_WIRE_VERSIONS:
            raise ConfigurationError(
                f"wire_version must be one of {SUPPORTED_WIRE_VERSIONS}, "
                f"got {wire_version!r}"
            )
        self._service = service
        self._wire_version = int(wire_version)
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def request(self, message: Message) -> Message:
        if self._loop is None or self._loop.is_closed():
            self._loop = asyncio.new_event_loop()
        reply = self._loop.run_until_complete(
            self._service.handle_wire(
                encode_message_for(self._wire_version, message)
            )
        )
        return decode_frame_any(reply)[1]

    def close(self) -> None:
        if self._loop is not None and not self._loop.is_closed():
            self._loop.run_until_complete(self._loop.shutdown_default_executor())
            self._loop.close()
        self._loop = None

    def __enter__(self) -> "LoopbackClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
