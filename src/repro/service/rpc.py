"""Socket transport for the protection service (TCP or unix domain).

The server is an asyncio shell around
:class:`repro.service.api.ProtectionService`: JSON lines in, JSON lines
out, connections multiplexed on the event loop while protection work
runs on the pool.  Every connection starts on v1 JSON framing; a
client may offer the negotiated v2 binary framing with a ``hello``
exchange (see ``docs/SERVICE.md``), after which both directions carry
length-prefixed frames with columnar ndarray payloads — a v1-only peer
never sees a v2 frame, and ``ServiceServer(wire_versions=(1,))`` pins
an endpoint to v1 for mixed-version clusters.  Requests that carry an
``"id"`` tag are handled
*concurrently* per connection — each reply echoes its request's id, so
a pipelining client can correlate replies arriving out of order — under
a server-wide in-flight semaphore that provides backpressure: when
``max_inflight`` requests are being served, the server stops reading
new lines and the kernel's TCP window pushes back on the clients.
Untagged requests keep the v1 FIFO contract (handled inline, strictly
in order), so old clients work unchanged.

Three clients share the verb vocabulary:

* :class:`ServiceClient` — synchronous, one request at a time; mobile
  client code and tests drive it like a function call.  Every request
  is tagged and the reply id is verified, so a desynchronised stream is
  detected immediately instead of silently answering request *n* with
  reply *n-1*; after a transport failure the client is **broken** (the
  socket is closed, every later call raises
  :class:`~repro.errors.TransportError`) until :meth:`reconnect`.
* :class:`AsyncServiceClient` — asyncio, many requests in flight on one
  connection, replies matched to futures by id.
* :class:`RemoteClusterClient` — a pool of endpoints with shard-affine
  dispatch, failover, and rehabilitation: a request whose endpoint dies
  is retried on another endpoint; the failed endpoint sits out an
  exponential-backoff probation and rejoins on its next successful
  probe, or is retired for good once it exhausts its retry budget.

Servers and clients optionally authenticate with a shared-secret
HMAC-blake2b challenge/response handshake (``ServiceServer(auth_key=...)``,
``repro serve --auth-key`` / ``--auth-key-file``); unauthenticated
requests are rejected with an ``error`` envelope of code ``auth``
before any engine work.

::

    service = ProtectionService(engine)
    server = ServiceServer(service, host="127.0.0.1", port=0)
    address = server.start_background()          # ("127.0.0.1", 54321)
    with ServiceClient(host=address[0], port=address[1]) as client:
        receipt = client.upload(trace)
        busy = client.top_cells(k=5)
    server.stop_background()

``python -m repro serve`` / ``python -m repro request`` expose the same
pair on the command line.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    ProtocolError,
    ServiceError,
    TransportError,
)
from repro.service.api import (
    AuthChallenge,
    AuthHandshakeRefused,
    AuthRequest,
    AuthResponse,
    ErrorEnvelope,
    HelloRequest,
    HelloResponse,
    Message,
    ProtectionService,
    RequestId,
    ServiceClientBase,
    SUPPORTED_WIRE_VERSIONS,
    V2_PREFIX_LEN,
    WIRE_VERSION,
    WIRE_VERSION_V2,
    client_auth_handshake,
    decode_frame,
    decode_frame_any,
    encode_hello_frame,
    encode_message,
    encode_message_for,
    encode_reply,
    encode_reply_for,
    load_auth_key,
    materialize_frame,
    materialize_frame_v2,
    MessageEncodeError,
    negotiate_wire_version,
    new_auth_nonce,
    parse_frame_envelope,
    parse_frame_v2,
    peer_versions_from_error,
    v2_frame_lengths,
    verify_auth_proof,
)

#: Generous per-line cap: a month-long trace at 1 Hz is ~10 MB of JSON.
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Default bound on concurrently-served requests (`repro serve --workers`).
DEFAULT_MAX_INFLIGHT = 32

#: Default bound on the summed size of tagged request lines being served
#: at once, across all connections.  Complements ``max_inflight`` (a
#: *count* bound): 32 small queries and 32 month-long traces cost very
#: different amounts of memory.
DEFAULT_MAX_INFLIGHT_BYTES = 256 * 1024 * 1024

#: How long a reply write may sit in :meth:`StreamWriter.drain` before
#: the connection is declared a slow consumer and evicted.
DEFAULT_DRAIN_TIMEOUT_S = 30.0


class _FrameReadError(Exception):
    """Internal: the connection's next frame can never be served (it is
    oversized, or violates the negotiated framing).  The message is
    reported to the peer and the connection closed — after either fault
    the byte stream cannot be resynchronised."""


class _ByteBudget:
    """Counting byte semaphore with an oversized-frame escape hatch.

    ``acquire(n)`` blocks while admitting *n* more bytes would exceed
    the budget **and** something else is already admitted; a frame
    larger than the whole budget is therefore admitted alone (when
    ``used == 0``) instead of deadlocking — the budget degrades to
    serial service for pathological frames rather than wedging.
    """

    def __init__(self, limit: int) -> None:
        self.limit = int(limit)
        self.used = 0
        self._cond = asyncio.Condition()

    async def acquire(self, n: int) -> None:
        async with self._cond:
            while self.used > 0 and self.used + n > self.limit:
                await self._cond.wait()
            self.used += n

    async def release(self, n: int) -> None:
        async with self._cond:
            self.used = max(0, self.used - n)
            self._cond.notify_all()


class ServiceServer:
    """Serve a :class:`ProtectionService` over TCP or a unix socket.

    Exactly one of ``(host, port)`` or ``unix_path`` addresses the
    server.  ``port=0`` binds an ephemeral port; the bound address is
    available as :attr:`address` once started.  ``max_inflight`` bounds
    the number of tagged requests being served at once across all
    connections — the backpressure knob (``repro serve --workers``).

    With ``auth_key`` set, every connection must complete the
    HMAC-blake2b challenge/response handshake (``auth_request`` →
    ``auth_challenge`` → ``auth_request`` with proof → ``auth_response``)
    before any other verb is served: an unauthenticated request is
    answered with an ``error`` envelope of code ``auth`` **before any
    engine work** — it never reaches :meth:`ProtectionService.handle`,
    never takes an in-flight slot.  Without a key the handshake is a
    no-op (an ``auth_request`` is answered ``ok`` immediately), so keyed
    clients interoperate with keyless servers and vice versa.
    """

    def __init__(
        self,
        service: ProtectionService,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        auth_key: Optional[bytes] = None,
        max_inflight_bytes: int = DEFAULT_MAX_INFLIGHT_BYTES,
        max_conn_inflight_bytes: Optional[int] = None,
        drain_timeout_s: Optional[float] = DEFAULT_DRAIN_TIMEOUT_S,
        wire_versions: Sequence[int] = SUPPORTED_WIRE_VERSIONS,
    ) -> None:
        versions = tuple(sorted({int(v) for v in wire_versions}))
        if WIRE_VERSION not in versions:
            raise ConfigurationError(
                f"wire_versions must include v{WIRE_VERSION} (the JSON "
                f"floor every peer speaks), got {tuple(wire_versions)!r}"
            )
        unknown = set(versions) - set(SUPPORTED_WIRE_VERSIONS)
        if unknown:
            raise ConfigurationError(
                f"unsupported wire_versions {sorted(unknown)}; this build "
                f"speaks {SUPPORTED_WIRE_VERSIONS}"
            )
        if int(max_inflight) < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if int(max_inflight_bytes) < 1:
            raise ConfigurationError(
                f"max_inflight_bytes must be >= 1, got {max_inflight_bytes}"
            )
        if max_conn_inflight_bytes is not None and int(max_conn_inflight_bytes) < 1:
            raise ConfigurationError(
                "max_conn_inflight_bytes must be >= 1 (or None), "
                f"got {max_conn_inflight_bytes}"
            )
        if drain_timeout_s is not None and float(drain_timeout_s) <= 0.0:
            raise ConfigurationError(
                f"drain_timeout_s must be > 0 (or None), got {drain_timeout_s}"
            )
        if auth_key is not None and not auth_key:
            raise ConfigurationError("auth_key must be non-empty bytes (or None)")
        self.service = service
        self.host = host
        self.port = int(port)
        self.unix_path = unix_path
        self.max_inflight = int(max_inflight)
        self.max_inflight_bytes = int(max_inflight_bytes)
        self.max_conn_inflight_bytes = (
            None if max_conn_inflight_bytes is None else int(max_conn_inflight_bytes)
        )
        self.drain_timeout_s = (
            None if drain_timeout_s is None else float(drain_timeout_s)
        )
        self.auth_key = None if auth_key is None else bytes(auth_key)
        #: Versions this endpoint will negotiate; ``(1,)`` makes it a
        #: v1-only endpoint (hellos are answered, but always with v1, so
        #: the connection never switches to binary framing).
        self.wire_versions = versions
        self._server: Optional[asyncio.AbstractServer] = None
        self._inflight: Optional[asyncio.Semaphore] = None
        self._byte_budget: Optional[_ByteBudget] = None
        self._evictions = 0
        self._active_requests = 0
        self._requests_served = 0
        self._connections = 0
        self._draining = False
        self._thread: Optional[threading.Thread] = None
        self._thread_loop: Optional[asyncio.AbstractEventLoop] = None

    # -- connection handling ---------------------------------------------

    async def _drain_or_evict(self, writer: asyncio.StreamWriter) -> None:
        """Flush the writer, evicting a consumer that will not read.

        A client that stops reading its socket parks every reply behind
        the kernel send buffer; without a deadline those replies (and
        their in-flight slots and bytes) are pinned forever.  After
        ``drain_timeout_s`` the transport is aborted — RST, no lingering
        FIN handshake — and the connection handler unwinds through its
        normal disconnect path.
        """
        if self.drain_timeout_s is None:
            await writer.drain()
            return
        try:
            await asyncio.wait_for(writer.drain(), timeout=self.drain_timeout_s)
        except asyncio.TimeoutError:
            self._evictions += 1
            transport = writer.transport
            if transport is not None:
                transport.abort()
            raise ConnectionResetError("slow consumer evicted")

    async def _serve_tagged(
        self,
        request_id: RequestId,
        message: Message,
        write_lock: asyncio.Lock,
        writer: asyncio.StreamWriter,
        cost: int,
        conn_budget: Optional[_ByteBudget],
        conn: Dict[str, Any],
    ) -> None:
        """One concurrently-handled request; owns one semaphore slot.

        The slot (and the request's byte reservation) is held until the
        reply has been written (or the write failed): releasing earlier
        would let a client that pipelines without reading accumulate
        unbounded finished replies behind the write lock, defeating the
        backpressure bound.  The reply's framing is decided under the
        write lock: a hello that switches the connection to v2 while
        this request is in flight switches every reply written after it
        in the byte stream too.
        """
        assert self._inflight is not None
        self._active_requests += 1
        try:
            try:
                reply = await self.service.handle(message)
            except asyncio.CancelledError:
                raise
            except Exception:
                # handle() promises never to raise; a service that breaks
                # that contract (or a test that injects a fault) kills the
                # connection rather than leaving the client waiting forever.
                writer.close()
                return
            try:
                async with write_lock:
                    writer.write(
                        encode_reply_for(
                            conn["wire_version"], reply, request_id=request_id
                        )
                    )
                    await self._drain_or_evict(writer)
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            self._active_requests -= 1
            self._requests_served += 1
            self._inflight.release()
            if self._byte_budget is not None:
                await self._byte_budget.release(cost)
            if conn_budget is not None:
                await conn_budget.release(cost)

    def _auth_reply(self, message: AuthRequest, conn_auth: Dict[str, Any]) -> Message:
        """One handshake leg; mutates the connection's auth state.

        The nonce is single-use: a failed proof (or a proof without a
        preceding challenge) must restart the handshake, so an attacker
        cannot grind one challenge offline while the connection idles.
        """
        if self.auth_key is None:
            return AuthResponse(ok=True)
        if message.proof is None:
            conn_auth["nonce"] = new_auth_nonce()
            return AuthChallenge(nonce=conn_auth["nonce"])
        nonce = conn_auth.pop("nonce", None)
        if nonce is None:
            return ErrorEnvelope(
                code="auth",
                message="no challenge outstanding; send auth_request without proof first",
            )
        if not verify_auth_proof(self.auth_key, nonce, message.proof):
            return ErrorEnvelope(
                code="auth", message="bad credentials: proof does not match"
            )
        conn_auth["ok"] = True
        return AuthResponse(ok=True)

    async def _read_frame(
        self, reader: asyncio.StreamReader, wire_version: int
    ) -> bytes:
        """The connection's next frame, in its negotiated framing.

        Returns ``b""`` at EOF (including a peer that vanished
        mid-frame — there is nobody left to answer).  Raises
        :class:`_FrameReadError` for streams that can never be served.

        v2 framing reads the fixed 16-byte prefix first and enforces the
        size cap from the *declared* lengths before the payload read —
        an oversized binary frame is rejected without ever being
        buffered, and its byte cost is known exactly (prefix + header +
        columnar blocks) before a budget is charged.
        """
        if wire_version < WIRE_VERSION_V2:
            try:
                return await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                raise _FrameReadError(
                    f"line exceeds {MAX_LINE_BYTES} bytes"
                ) from None
        try:
            prefix = await reader.readexactly(V2_PREFIX_LEN)
        except asyncio.IncompleteReadError:
            return b""
        try:
            header_len, blocks_len = v2_frame_lengths(prefix)
        except ProtocolError as exc:
            raise _FrameReadError(
                f"peer broke the negotiated v2 framing: {exc}"
            ) from None
        total = header_len + blocks_len
        if V2_PREFIX_LEN + total > MAX_LINE_BYTES:
            raise _FrameReadError(
                f"frame of {V2_PREFIX_LEN + total} bytes exceeds "
                f"{MAX_LINE_BYTES} bytes"
            )
        try:
            return prefix + await reader.readexactly(total)
        except asyncio.IncompleteReadError:
            return b""

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Cancellation (server shutdown) is absorbed so the connection
        # task always finishes cleanly: a task left in cancelled state
        # trips asyncio's stream done-callback on Python 3.11.
        assert self._inflight is not None
        self._connections += 1
        write_lock = asyncio.Lock()
        tasks: set = set()
        conn_auth: Dict[str, Any] = {"ok": self.auth_key is None}
        # Per-connection negotiated framing; every connection starts on
        # v1 JSON and only a hello exchange can raise it, so a v1-only
        # peer never sees a v2 frame.
        conn: Dict[str, Any] = {"wire_version": WIRE_VERSION}
        conn_budget: Optional[_ByteBudget] = None
        if self.max_conn_inflight_bytes is not None:
            conn_budget = _ByteBudget(self.max_conn_inflight_bytes)
        try:
            while True:
                try:
                    line = await self._read_frame(reader, conn["wire_version"])
                except _FrameReadError as exc:
                    async with write_lock:
                        writer.write(
                            encode_reply_for(
                                conn["wire_version"],
                                ErrorEnvelope(code="protocol", message=str(exc)),
                            )
                        )
                        await self._drain_or_evict(writer)
                    break
                if not line:
                    break
                if conn["wire_version"] < WIRE_VERSION_V2 and not line.strip():
                    continue
                try:
                    # Envelope first, body second: an unauthenticated
                    # frame is rejected on its *type* alone, before its
                    # payload is materialised into traces/arrays — a
                    # keyless peer cannot make the server build objects.
                    blocks = None
                    if conn["wire_version"] >= WIRE_VERSION_V2:
                        request_id, slug, cls, body, blocks = parse_frame_v2(line)
                    else:
                        request_id, slug, cls, body = parse_frame_envelope(line)
                    if not conn_auth["ok"] and cls not in (
                        AuthRequest,
                        HelloRequest,
                    ):
                        # Rejected before any engine work: no body
                        # build, no service.handle, no in-flight slot.
                        # (hello is exempt like auth: version discovery
                        # is transport plumbing, not a served verb.)
                        payload = encode_reply_for(
                            conn["wire_version"],
                            ErrorEnvelope(
                                code="auth",
                                message="authentication required: complete "
                                "the auth handshake before any other request",
                            ),
                            request_id=request_id,
                        )
                        async with write_lock:
                            writer.write(payload)
                            await self._drain_or_evict(writer)
                        continue
                    if blocks is None:
                        message = materialize_frame(request_id, slug, cls, body)
                    else:
                        message = materialize_frame_v2(
                            request_id, slug, cls, body, blocks
                        )
                except ProtocolError as exc:
                    async with write_lock:
                        writer.write(
                            encode_reply_for(
                                conn["wire_version"],
                                ErrorEnvelope(code="protocol", message=str(exc)),
                                request_id=getattr(exc, "request_id", None),
                            )
                        )
                        await self._drain_or_evict(writer)
                    continue
                if isinstance(message, AuthRequest):
                    # Transport-level: handled inline (tagged or not),
                    # never reaches the service facade.
                    reply = self._auth_reply(message, conn_auth)
                    payload = encode_reply_for(
                        conn["wire_version"], reply, request_id=request_id
                    )
                    async with write_lock:
                        writer.write(payload)
                        await self._drain_or_evict(writer)
                    if isinstance(reply, ErrorEnvelope):
                        # Failed proof (or proof without challenge):
                        # drop the connection, so every further guess
                        # costs a fresh TCP dial + challenge — an online
                        # brute force cannot grind one socket.
                        break
                    continue
                if isinstance(message, HelloRequest):
                    # Transport-level: the reply is the framing switch
                    # point.  The agreed version applies to every frame
                    # after this reply in the byte stream — concurrent
                    # in-flight replies pick it up at their own write —
                    # so the write and the switch share the write lock.
                    agreed = negotiate_wire_version(
                        message.versions, self.wire_versions
                    )
                    payload = encode_reply_for(
                        conn["wire_version"],
                        HelloResponse(version=agreed, versions=self.wire_versions),
                        request_id=request_id,
                    )
                    async with write_lock:
                        writer.write(payload)
                        await self._drain_or_evict(writer)
                        conn["wire_version"] = agreed
                    continue
                if request_id is None:
                    # Untagged = legacy FIFO: handled inline, replies in
                    # request order, exactly the v1 behaviour.
                    self._active_requests += 1
                    try:
                        payload = encode_reply_for(
                            conn["wire_version"], await self.service.handle(message)
                        )
                    finally:
                        self._active_requests -= 1
                        self._requests_served += 1
                    async with write_lock:
                        writer.write(payload)
                        await self._drain_or_evict(writer)
                    continue
                # Tagged: acquire an in-flight slot *before* reading the
                # next line — a full server stops consuming input, and
                # TCP flow control backpressures the client.  Byte
                # budgets are reserved first (per-connection, then
                # global) so one connection full of huge frames cannot
                # starve the global budget while also holding count
                # slots: a blocked connection stops being read, and TCP
                # pushes back.  The cost is the frame's actual size on
                # the wire — for a v2 frame that is prefix + header +
                # columnar blocks, not a stringified estimate.
                cost = len(line)
                if conn_budget is not None:
                    await conn_budget.acquire(cost)
                if self._byte_budget is not None:
                    await self._byte_budget.acquire(cost)
                await self._inflight.acquire()
                task = asyncio.ensure_future(
                    self._serve_tagged(
                        request_id,
                        message,
                        write_lock,
                        writer,
                        cost,
                        conn_budget,
                        conn,
                    )
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except asyncio.CancelledError:
            pass
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            if tasks:
                # Let in-flight replies finish (the client may be
                # half-closed but still reading).  Server stop can
                # cancel this handler a second time while it drains
                # here — swallow it and fall through to the close, or
                # asyncio logs a spurious CancelledError at teardown.
                try:
                    await asyncio.gather(*tasks, return_exceptions=True)
                except asyncio.CancelledError:
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError):
                pass

    # -- async lifecycle --------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (idempotent)."""
        if self._server is not None:
            return
        self._inflight = asyncio.Semaphore(self.max_inflight)
        self._byte_budget = _ByteBudget(self.max_inflight_bytes)
        self._draining = False
        # Let the service's metrics verb see transport-level queue
        # depth and byte budgets (docs/CLUSTER.md: operator surface).
        self.service.transport_stats = self.transport_stats
        if self.unix_path is not None:
            # A killed/crashed predecessor leaves its socket file behind
            # (asyncio does not unlink on close either), which would make
            # every restart fail with EADDRINUSE.  Only ever remove an
            # actual socket — anything else at that path is a user error.
            import os
            import stat

            try:
                if stat.S_ISSOCK(os.stat(self.unix_path).st_mode):
                    os.unlink(self.unix_path)
            except FileNotFoundError:
                pass
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path, limit=MAX_LINE_BYTES
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self.port,
                limit=MAX_LINE_BYTES,
            )
            self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> Union[str, Tuple[str, int]]:
        """Where clients connect: a unix path or ``(host, port)``."""
        if self.unix_path is not None:
            return self.unix_path
        return (self.host, self.port)

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def drain(self) -> Dict[str, int]:
        """Graceful shutdown: stop accepting, finish in-flight, flush streams.

        Three ordered steps: (1) close the listening socket so no new
        connection can arrive; (2) acquire every in-flight slot, which
        completes only once all tagged requests have been served *and
        their replies written*; (3) flush every open streaming window
        through the cascade so no accepted record is lost.  Returns the
        stream-flush summary (``sessions`` / ``windows_flushed`` /
        ``records_flushed``).  ``repro serve`` runs this on SIGTERM.
        """
        self._draining = True
        await self.stop()
        if self._inflight is not None:
            for _ in range(self.max_inflight):
                await self._inflight.acquire()
        loop = asyncio.get_event_loop()
        return await loop.run_in_executor(None, self.service.drain_streams)

    def transport_stats(self) -> Dict[str, Any]:
        """Transport-level counters (budgets, evictions, drain state).

        ``inflight_requests`` is the live queue depth (requests being
        handled right now) and ``requests_served`` the lifetime total —
        the two numbers ``repro top`` leads with.
        """
        used = 0 if self._byte_budget is None else self._byte_budget.used
        return {
            "wire_versions": list(self.wire_versions),
            "max_inflight": self.max_inflight,
            "inflight_requests": self._active_requests,
            "requests_served": self._requests_served,
            "connections_accepted": self._connections,
            "max_inflight_bytes": self.max_inflight_bytes,
            "inflight_bytes": used,
            "max_conn_inflight_bytes": self.max_conn_inflight_bytes,
            "drain_timeout_s": self.drain_timeout_s,
            "slow_consumer_evictions": self._evictions,
            "draining": self._draining,
        }

    def run(self) -> None:
        """Blocking entry point (the ``repro serve`` command)."""
        try:
            asyncio.run(self.serve_forever())
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass

    # -- background-thread lifecycle (tests, demos, benchmarks) ----------

    def start_background(self) -> Union[str, Tuple[str, int]]:
        """Run the server on a dedicated thread; returns the bound address."""
        if self._thread is not None:
            return self.address
        ready = threading.Event()
        startup: dict = {}

        def _serve() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            # Safe unlocked: readers wait on `ready` (set below), and the
            # Event provides the happens-before for this write.
            self._thread_loop = loop  # lint: allow(CONC001)
            try:
                loop.run_until_complete(self.start())
            except Exception as exc:  # pragma: no cover - bind failures
                startup["error"] = exc
                ready.set()
                loop.close()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.stop())
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.run_until_complete(loop.shutdown_default_executor())
                loop.close()

        self._thread = threading.Thread(
            target=_serve, name="mood-service-server", daemon=True
        )
        self._thread.start()
        ready.wait()
        if "error" in startup:
            self._thread.join()
            self._thread = None
            raise startup["error"]
        return self.address

    def stop_background(self) -> None:
        """Stop a :meth:`start_background` server and join its thread."""
        if self._thread is None:
            return
        assert self._thread_loop is not None
        self._thread_loop.call_soon_threadsafe(self._thread_loop.stop)
        self._thread.join()
        self._thread = None
        self._thread_loop = None

    def __enter__(self) -> "ServiceServer":
        self.start_background()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop_background()


# ---------------------------------------------------------------------------
# Endpoint addressing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Endpoint:
    """One ``repro serve`` address: TCP ``(host, port)`` or a unix path."""

    host: Optional[str] = None
    port: Optional[int] = None
    unix_path: Optional[str] = None

    def __post_init__(self) -> None:
        tcp = self.host is not None and self.port is not None
        if tcp == (self.unix_path is not None):
            raise ConfigurationError(
                f"an endpoint needs either host+port or unix_path, got {self!r}"
            )

    def label(self) -> str:
        if self.unix_path is not None:
            return f"unix:{self.unix_path}"
        return f"{self.host}:{self.port}"


def parse_endpoint(spec: Any) -> Endpoint:
    """An :class:`Endpoint` from any of the declarative spellings.

    ``"host:port"``, ``"unix:/path"``, ``("host", port)``,
    ``{"host": ..., "port": ...}``, ``{"unix": "/path"}``, or an
    :class:`Endpoint` — all JSON-friendly, so a ``ProtectionConfig`` can
    carry a cluster.
    """
    if isinstance(spec, Endpoint):
        return spec
    if isinstance(spec, str):
        if spec.startswith("unix:"):
            return Endpoint(unix_path=spec[len("unix:"):])
        host, sep, port = spec.rpartition(":")
        if not sep or not host:
            raise ConfigurationError(
                f"endpoint {spec!r} is not 'host:port' or 'unix:/path'"
            )
        try:
            return Endpoint(host=host, port=int(port))
        except ValueError:
            raise ConfigurationError(
                f"endpoint {spec!r} has a non-numeric port"
            ) from None
    if isinstance(spec, Mapping):
        if "unix" in spec:
            return Endpoint(unix_path=str(spec["unix"]))
        if "unix_path" in spec:
            return Endpoint(unix_path=str(spec["unix_path"]))
        if "host" in spec and "port" in spec:
            return Endpoint(host=str(spec["host"]), port=int(spec["port"]))
        raise ConfigurationError(
            f"endpoint dict needs host+port or unix, got {dict(spec)!r}"
        )
    if isinstance(spec, (tuple, list)) and len(spec) == 2:
        return Endpoint(host=str(spec[0]), port=int(spec[1]))
    raise ConfigurationError(f"cannot parse endpoint {spec!r}")


# ---------------------------------------------------------------------------
# Synchronous client SDK
# ---------------------------------------------------------------------------


class ServiceClient(ServiceClientBase):
    """Synchronous socket client for a running :class:`ServiceServer`.

    Connects over TCP (``host``/``port``) or a unix socket
    (``unix_path``); usable as a context manager.  All verb methods
    (``protect`` / ``upload`` / ``query_count`` / ``top_cells`` /
    ``stats``) come from :class:`~repro.service.api.ServiceClientBase`.

    Every request is tagged with a connection-unique id and the reply's
    id is verified.  A transport failure (timeout, reset, truncated,
    corrupted, or mismatched reply) leaves the stream mid-frame, so the
    client closes the socket and marks itself **broken**: every later
    call raises :class:`~repro.errors.TransportError` until
    :meth:`reconnect` — the one thing it must never do is read the stale
    tail of the aborted exchange as the answer to a fresh request.

    With ``auth_key`` set, the HMAC-blake2b handshake runs as part of
    every (re)connect, before any verb; a rejected key raises
    :class:`~repro.errors.AuthenticationError`.

    With v2 in ``wire_versions`` (the default) every (re)connect ends
    with a ``hello`` exchange: a modern server answers and both sides
    switch to binary framing; a pre-negotiation (v1-only) server
    rejects the hello by version, the client reads its own supported
    versions out of the mismatch error, and the connection simply
    stays on v1 JSON — the downgrade is not an error.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        timeout: float = 60.0,
        auth_key: Optional[bytes] = None,
        wire_versions: Sequence[int] = SUPPORTED_WIRE_VERSIONS,
    ) -> None:
        if unix_path is None and (host is None or port is None):
            raise ConfigurationError(
                "ServiceClient needs either host+port or unix_path"
            )
        versions = tuple(sorted({int(v) for v in wire_versions}))
        if WIRE_VERSION not in versions:
            raise ConfigurationError(
                f"wire_versions must include v{WIRE_VERSION} (the JSON "
                f"fallback every peer speaks); got {list(versions)}"
            )
        unknown = [v for v in versions if v not in SUPPORTED_WIRE_VERSIONS]
        if unknown:
            raise ConfigurationError(
                f"unsupported wire version(s) {unknown}; this build speaks "
                f"{list(SUPPORTED_WIRE_VERSIONS)}"
            )
        self._host = host
        self._port = None if port is None else int(port)
        self._unix_path = unix_path
        self._timeout = timeout
        self._auth_key = None if auth_key is None else bytes(auth_key)
        self._wire_versions = versions
        self._wire_version = WIRE_VERSION
        self._lock = threading.Lock()
        self._next_id = 0
        self._sock: Optional[socket.socket] = None
        self._file: Optional[Any] = None
        self._broken: Optional[str] = None
        self._connect()

    def _connect(self) -> None:
        if self._unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._timeout)
            sock.connect(self._unix_path)
        else:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._broken = None
        # Fresh connection, fresh framing: negotiation is per-connection.
        self._wire_version = WIRE_VERSION
        if self._auth_key is not None:
            self._handshake()
        if max(self._wire_versions) > WIRE_VERSION:
            self._negotiate()

    def _handshake(self) -> None:
        """Authenticate the fresh connection (runs before any verb).

        Drives the shared sans-IO state machine
        (:func:`~repro.service.api.client_auth_handshake`); only the
        failure classification is transport-specific: a non-``auth``
        envelope (e.g. a pre-auth server) surfaces as ``ServiceError``
        — the server's limitation, not a credential failure.
        """
        steps = client_auth_handshake(self._auth_key)
        try:
            request = next(steps)
            while True:
                request = steps.send(self._request_unlocked(request))
        except StopIteration:
            return  # authenticated (or the server never required auth)
        except AuthenticationError:
            self._mark_broken("handshake failed")
            raise
        except AuthHandshakeRefused as exc:
            self._mark_broken("handshake failed")
            raise ServiceError(
                exc.reply.code, f"handshake failed: {exc.reply.message}"
            ) from None
        except ProtocolError:
            self._mark_broken("handshake violated the protocol")
            raise

    def _mark_broken(self, why: str) -> None:
        self._broken = why
        self._close_quietly()

    def _close_quietly(self) -> None:
        try:
            if self._file is not None:
                self._file.close()
        except OSError:
            pass
        finally:
            self._file = None
            try:
                if self._sock is not None:
                    self._sock.close()
            except OSError:
                pass
            finally:
                self._sock = None

    def reconnect(self) -> "ServiceClient":
        """Drop the (possibly broken) connection and dial a fresh one."""
        with self._lock:
            self._close_quietly()
            self._connect()
        return self

    def request(self, message: Message) -> Message:
        with self._lock:
            if self._broken is not None:
                raise TransportError(
                    f"connection is broken ({self._broken}); call reconnect()"
                )
            return self._request_unlocked(message)

    def _negotiate(self) -> None:
        """Offer v2 framing; downgrade silently if the peer is v1-only.

        The hello frame is deliberately tagged ``"v": 2`` so a
        pre-negotiation server rejects it on *version* (an error whose
        wording names the versions it speaks) rather than on the
        unknown slug.  That rejection is the downgrade signal: the
        connection stays on v1 JSON and stays healthy.  Only a reply
        that is neither a hello answer nor a recognisable version
        mismatch marks the connection broken.
        """
        request_id = self._next_id
        self._next_id += 1
        hello = HelloRequest(versions=self._wire_versions)
        payload = encode_hello_frame(hello, request_id=request_id)
        reply = self._exchange(payload, request_id)
        if isinstance(reply, HelloResponse):
            agreed = int(reply.version)
            if agreed not in self._wire_versions:
                self._mark_broken("negotiation violated the protocol")
                raise ProtocolError(
                    f"server agreed to wire v{agreed}, which this client "
                    f"never offered ({list(self._wire_versions)}); the "
                    "connection is broken — reconnect() to continue"
                )
            # The server switched at its reply; every frame from here
            # on (both directions) uses the agreed framing.
            self._wire_version = agreed
            return
        if isinstance(reply, ErrorEnvelope):
            if peer_versions_from_error(reply.message) is not None:
                # A v1-only peer: keep talking JSON, nothing is broken.
                self._wire_version = WIRE_VERSION
                return
            self._mark_broken("negotiation rejected")
            raise ServiceError(
                reply.code, f"negotiation failed: {reply.message}"
            )
        self._mark_broken("negotiation violated the protocol")
        raise ProtocolError(
            f"expected hello_response or error during negotiation, got "
            f"{type(reply).__name__}; the connection is broken — "
            "reconnect() to continue"
        )

    def _read_exact(self, n: int) -> bytes:
        """Read exactly ``n`` bytes (``BufferedReader.read`` may return
        short under a socket timeout mid-fill); short = peer hung up."""
        assert self._file is not None
        chunks = []
        remaining = n
        while remaining > 0:
            chunk = self._file.read(remaining)
            if not chunk:
                break
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _read_binary_reply(self) -> bytes:
        """Read one length-prefixed v2 frame off the negotiated stream."""
        prefix = self._read_exact(V2_PREFIX_LEN)
        if not prefix:
            return b""
        if len(prefix) < V2_PREFIX_LEN:
            self._mark_broken("server closed the connection mid-frame")
            raise TransportError("server closed the connection mid-frame")
        try:
            header_len, blocks_len = v2_frame_lengths(prefix)
        except ProtocolError as exc:
            self._mark_broken(f"unparseable reply: {exc}")
            raise ProtocolError(
                f"unparseable reply ({exc}); the connection is broken — "
                "reconnect() to continue"
            ) from exc
        total = header_len + blocks_len
        if V2_PREFIX_LEN + total > MAX_LINE_BYTES:
            self._mark_broken("oversized reply")
            raise ProtocolError(
                f"reply declares {V2_PREFIX_LEN + total} bytes, over the "
                f"{MAX_LINE_BYTES} byte cap; the connection is broken — "
                "reconnect() to continue"
            )
        rest = self._read_exact(total)
        if len(rest) < total:
            self._mark_broken("server closed the connection mid-frame")
            raise TransportError("server closed the connection mid-frame")
        return prefix + rest

    def _request_unlocked(self, message: Message) -> Message:
        request_id = self._next_id
        self._next_id += 1
        payload = encode_message_for(
            self._wire_version, message, request_id=request_id
        )
        return self._exchange(payload, request_id)

    def _exchange(self, payload: bytes, request_id: int) -> Message:
        assert self._file is not None
        try:
            self._file.write(payload)
            self._file.flush()
            if self._wire_version >= WIRE_VERSION_V2:
                line = self._read_binary_reply()
            else:
                line = self._file.readline(MAX_LINE_BYTES)
        except (socket.timeout, TimeoutError) as exc:
            # The reply (or its tail) is still in flight: this
            # stream can never be trusted again.
            self._mark_broken("request timed out mid-frame")
            raise TransportError(
                f"request timed out after {self._timeout}s; the stream is "
                "desynchronised — reconnect() to continue"
            ) from exc
        except OSError as exc:
            self._mark_broken(f"socket error: {exc}")
            raise TransportError(f"socket error mid-request: {exc}") from exc
        if not line:
            self._mark_broken("server closed the connection mid-request")
            raise TransportError("server closed the connection mid-request")
        if self._wire_version < WIRE_VERSION_V2 and not line.endswith(b"\n"):
            # A reply longer than the cap would leave its tail unread
            # and desynchronize every later request — fail loudly.
            self._mark_broken("oversized reply truncated mid-frame")
            raise ProtocolError(
                f"reply exceeds {MAX_LINE_BYTES} bytes (truncated); "
                "the connection is broken — reconnect() to continue"
            )
        try:
            reply_id, reply = decode_frame_any(line)
        except ProtocolError as exc:
            # A reply this side cannot parse (corrupted bytes, invalid
            # JSON) proves the stream is compromised: frame boundaries
            # can no longer be trusted, so the connection is done.
            self._mark_broken(f"unparseable reply: {exc}")
            raise ProtocolError(
                f"unparseable reply ({exc}); the connection is broken — "
                "reconnect() to continue"
            ) from exc
        # An untagged reply is a v1 server that ignored the (unknown
        # to it) id key; with exactly one request outstanding the
        # FIFO contract still pairs it correctly.  Only a *wrong*
        # tag proves the stream is desynchronised.
        if reply_id is not None and reply_id != request_id:
            self._mark_broken(
                f"reply id {reply_id!r} does not match request id "
                f"{request_id!r} (stream desynchronised)"
            )
            raise ProtocolError(
                f"reply id {reply_id!r} does not match request id "
                f"{request_id!r}; the connection is broken — "
                "reconnect() to continue"
            )
        return reply

    def close(self) -> None:
        with self._lock:
            self._close_quietly()
            self._broken = "client closed"

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Asynchronous client + multi-endpoint cluster
# ---------------------------------------------------------------------------


class AsyncServiceClient:
    """Asyncio client: many requests in flight on one connection.

    Each request is tagged with a connection-unique id; a background
    reader task matches reply lines to pending futures by id, so replies
    may arrive in any order.  Any transport fault (EOF, reset, oversized
    line, timeout) fails *every* pending request with
    :class:`~repro.errors.TransportError` and poisons the client — the
    cluster layer treats that as "this endpoint is gone".
    """

    def __init__(
        self,
        endpoint: Endpoint,
        timeout: float = 120.0,
        auth_key: Optional[bytes] = None,
        wire_versions: Sequence[int] = SUPPORTED_WIRE_VERSIONS,
    ) -> None:
        versions = tuple(sorted({int(v) for v in wire_versions}))
        if WIRE_VERSION not in versions:
            raise ConfigurationError(
                f"wire_versions must include v{WIRE_VERSION} (the JSON "
                f"fallback every peer speaks); got {list(versions)}"
            )
        unknown = [v for v in versions if v not in SUPPORTED_WIRE_VERSIONS]
        if unknown:
            raise ConfigurationError(
                f"unsupported wire version(s) {unknown}; this build speaks "
                f"{list(SUPPORTED_WIRE_VERSIONS)}"
            )
        self.endpoint = endpoint
        self.timeout = timeout
        self._auth_key = None if auth_key is None else bytes(auth_key)
        self._wire_versions = versions
        self._wire_version = WIRE_VERSION
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: Dict[RequestId, asyncio.Future] = {}
        self._next_id = 0
        self._broken: Optional[str] = None

    async def connect(self) -> "AsyncServiceClient":
        if self.endpoint.unix_path is not None:
            self._reader, self._writer = await asyncio.open_unix_connection(
                self.endpoint.unix_path, limit=MAX_LINE_BYTES
            )
        else:
            self._reader, self._writer = await asyncio.open_connection(
                self.endpoint.host, self.endpoint.port, limit=MAX_LINE_BYTES
            )
        self._wire_version = WIRE_VERSION
        if max(self._wire_versions) > WIRE_VERSION:
            # Negotiate *before* the background reader starts: the hello
            # reply is read inline, so there is no race between the
            # framing switch and the loop's first read, and the loop is
            # born knowing its final framing.
            await self._negotiate()
        self._reader_task = asyncio.ensure_future(self._read_loop())
        if self._auth_key is not None:
            await self._handshake()
        return self

    async def _negotiate(self) -> None:
        """Offer v2 framing inline; downgrade silently on a v1-only peer.

        Mirrors :meth:`ServiceClient._negotiate`: a hello answer
        switches the connection to the agreed framing; a version
        mismatch whose wording names the peer's versions keeps it on
        v1 JSON (not an error); anything else poisons the client.
        """
        assert self._reader is not None and self._writer is not None
        request_id = self._next_id
        self._next_id += 1
        hello = HelloRequest(versions=self._wire_versions)
        try:
            self._writer.write(encode_hello_frame(hello, request_id=request_id))
            await self._writer.drain()
            line = await asyncio.wait_for(
                self._reader.readline(), self.timeout
            )
        except (OSError, ConnectionError, asyncio.TimeoutError) as exc:
            self._poison(f"negotiation failed: {exc}", None)
            raise TransportError(
                f"negotiation with {self.endpoint.label()} failed: {exc}"
            ) from exc
        except (asyncio.LimitOverrunError, ValueError) as exc:
            self._poison("negotiation reply oversized", None)
            raise TransportError(
                f"negotiation reply from {self.endpoint.label()} exceeds "
                f"{MAX_LINE_BYTES} bytes"
            ) from exc
        if not line:
            self._poison("connection closed during negotiation", None)
            raise TransportError(
                f"{self.endpoint.label()} closed the connection during "
                "negotiation"
            )
        try:
            reply_id, reply = decode_frame(line)
        except ProtocolError as exc:
            self._poison(f"unparseable negotiation reply: {exc}", None)
            raise TransportError(
                f"unparseable negotiation reply from "
                f"{self.endpoint.label()}: {exc}"
            ) from exc
        if reply_id is not None and reply_id != request_id:
            self._poison("negotiation reply id mismatch", None)
            raise TransportError(
                f"negotiation reply id {reply_id!r} from "
                f"{self.endpoint.label()} does not match {request_id!r}"
            )
        if isinstance(reply, HelloResponse):
            agreed = int(reply.version)
            if agreed not in self._wire_versions:
                self._poison("negotiation violated the protocol", None)
                raise TransportError(
                    f"{self.endpoint.label()} agreed to wire v{agreed}, "
                    f"which this client never offered "
                    f"({list(self._wire_versions)})"
                )
            self._wire_version = agreed
            return
        if isinstance(reply, ErrorEnvelope):
            if peer_versions_from_error(reply.message) is not None:
                # A v1-only peer: keep talking JSON, nothing is broken.
                self._wire_version = WIRE_VERSION
                return
            self._poison("negotiation rejected", None)
            raise TransportError(
                f"negotiation with {self.endpoint.label()} failed: "
                f"[{reply.code}] {reply.message}"
            )
        self._poison("negotiation violated the protocol", None)
        raise TransportError(
            f"expected hello_response or error from "
            f"{self.endpoint.label()} during negotiation, got "
            f"{type(reply).__name__}"
        )

    async def _handshake(self) -> None:
        """Authenticate before the connection carries any verb.

        Same sans-IO state machine as the sync client; here a
        non-``auth`` envelope (e.g. a pre-auth server) surfaces as
        :class:`TransportError` so the cluster layer fails over to the
        other endpoints instead of treating it as a credential failure.
        """
        steps = client_auth_handshake(self._auth_key)
        try:
            request = next(steps)
            while True:
                request = steps.send(await self.request(request))
        except StopIteration:
            return  # authenticated (or the server never required auth)
        except AuthenticationError:
            self._poison("handshake failed")
            raise
        except AuthHandshakeRefused as exc:
            self._poison("handshake failed")
            raise TransportError(
                f"handshake with {self.endpoint.label()} failed: "
                f"[{exc.reply.code}] {exc.reply.message}"
            ) from None
        except ProtocolError:
            self._poison("handshake violated the protocol")
            raise

    async def _read_loop(self) -> None:
        assert self._reader is not None
        # The loop starts after negotiation, so the framing is fixed for
        # the connection's whole lifetime.
        binary = self._wire_version >= WIRE_VERSION_V2
        try:
            while True:
                if binary:
                    try:
                        prefix = await self._reader.readexactly(V2_PREFIX_LEN)
                    except asyncio.IncompleteReadError as exc:
                        if not exc.partial:
                            raise TransportError(
                                f"{self.endpoint.label()} closed the "
                                "connection"
                            ) from exc
                        raise TransportError(
                            f"{self.endpoint.label()} closed the connection "
                            "mid-frame"
                        ) from exc
                    try:
                        header_len, blocks_len = v2_frame_lengths(prefix)
                    except ProtocolError as exc:
                        raise TransportError(
                            f"{self.endpoint.label()} broke the negotiated "
                            f"v2 framing: {exc}"
                        ) from exc
                    total = header_len + blocks_len
                    if V2_PREFIX_LEN + total > MAX_LINE_BYTES:
                        raise TransportError(
                            f"reply from {self.endpoint.label()} declares "
                            f"{V2_PREFIX_LEN + total} bytes, over the "
                            f"{MAX_LINE_BYTES} byte cap"
                        )
                    try:
                        line = prefix + await self._reader.readexactly(total)
                    except asyncio.IncompleteReadError as exc:
                        raise TransportError(
                            f"{self.endpoint.label()} closed the connection "
                            "mid-frame"
                        ) from exc
                else:
                    line = await self._reader.readline()
                    if not line:
                        raise TransportError(
                            f"{self.endpoint.label()} closed the connection"
                        )
                    if not line.endswith(b"\n"):
                        raise TransportError(
                            f"reply from {self.endpoint.label()} exceeds "
                            f"{MAX_LINE_BYTES} bytes (truncated)"
                        )
                try:
                    reply_id, message = decode_frame_any(line)
                except ProtocolError as exc:
                    reply_id = getattr(exc, "request_id", None)
                    future = self._pending.pop(reply_id, None)
                    if future is not None and not future.done():
                        # The frame was readable enough to carry a known
                        # id: fail that one request, keep the stream.
                        future.set_exception(exc)
                        continue
                    # Unattributable garbage (corrupted bytes, invalid
                    # JSON): frame boundaries can no longer be trusted —
                    # fail everything now instead of stalling every
                    # pending request to its timeout.
                    raise TransportError(
                        f"unparseable reply from {self.endpoint.label()}: {exc}"
                    ) from exc
                if reply_id is None:
                    # A pre-request-id server ignored the "id" key.  This
                    # client always pipelines, so positional pairing is
                    # unsafe — fail every pending request *now* rather
                    # than letting each stall its full timeout.
                    raise TransportError(
                        f"{self.endpoint.label()} does not echo request ids "
                        "(pre-request-id server?); use the synchronous "
                        "ServiceClient for v1 endpoints"
                    )
                future = self._pending.pop(reply_id, None)
                if future is not None and not future.done():
                    future.set_result(message)
        except asyncio.CancelledError:
            raise
        except TransportError as exc:
            self._poison(str(exc), exc)
        except Exception as exc:  # noqa: BLE001 - any fault poisons the link
            self._poison(f"read loop failed: {exc}", exc)

    def _poison(self, why: str, cause: Optional[Exception] = None) -> None:
        if self._broken is None:
            self._broken = why
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                exc = cause if isinstance(cause, TransportError) else TransportError(why)
                future.set_exception(exc)
        if self._writer is not None:
            self._writer.close()

    async def request(self, message: Message) -> Message:
        """Send *message*; resolves to the reply (possibly an envelope)."""
        if self._broken is not None:
            raise TransportError(
                f"connection to {self.endpoint.label()} is broken: {self._broken}"
            )
        assert self._writer is not None
        request_id = self._next_id
        self._next_id += 1
        # Encode before registering the future: an unencodable message
        # (e.g. a NaN coordinate, ProtocolError) must propagate to the
        # caller without leaking a never-resolved pending entry.
        payload = encode_message_for(
            self._wire_version, message, request_id=request_id
        )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(payload)
            await self._writer.drain()
        except (OSError, ConnectionError) as exc:
            self._pending.pop(request_id, None)
            self._poison(f"write failed: {exc}", None)
            raise TransportError(
                f"write to {self.endpoint.label()} failed: {exc}"
            ) from exc
        try:
            return await asyncio.wait_for(future, self.timeout)
        except asyncio.TimeoutError as exc:
            # The reply may still land on the shared stream later; the
            # whole connection is no longer trustworthy.
            self._poison(f"request timed out after {self.timeout}s", None)
            raise TransportError(
                f"request to {self.endpoint.label()} timed out after "
                f"{self.timeout}s"
            ) from exc

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._reader_task = None
        self._poison("client closed")


class _EndpointUnavailable(Exception):
    """Internal: the endpoint went on probation / got retired while this
    coroutine was queued for its connection lock — re-evaluate, nothing
    new to record."""


class _DialFailed(Exception):
    """Internal: connecting (or handshaking) failed before any request
    frame was sent.  The failure is already recorded against the
    endpoint; the request itself remains retryable there later."""


@dataclass
class EndpointHealth:
    """Rehabilitation state for one endpoint (healthy → probation → retired).

    * **healthy** — ``failures == 0``: serves requests normally.
    * **probation** — after a fault the endpoint sits out until
      ``available_at`` (exponential backoff per consecutive failure);
      the next request whose ring order reaches it after the deadline
      probes it with a fresh connection.  A served request resets the
      state to healthy — a *flapping* endpoint rejoins.
    * **retired** — more than ``retry_budget`` consecutive failures:
      permanently out for this client's lifetime — a *dead* endpoint
      still fails over for good.
    """

    failures: int = 0
    retired: bool = False
    #: Monotonic deadline while on probation (0.0 = available now).
    available_at: float = 0.0
    #: Connections already blamed, so one poisoned connection that kills
    #: many in-flight requests counts as ONE failure, not many.
    blamed: List[Any] = field(default_factory=list)


class RemoteClusterClient:
    """Shard-affine dispatch over a pool of service endpoints.

    ``run()`` takes ``(shard, request)`` pairs and returns the replies
    positionally.  Shard *s* is served by endpoint ``s % n`` — the same
    content-addressed placement every run, every host — and up to
    ``max_inflight`` requests ride each connection concurrently.

    **Fault handling** is a per-endpoint state machine
    (:class:`EndpointHealth`): a transport fault (refused, reset, timed
    out, mid-frame EOF, corrupted reply) puts the endpoint on
    exponential-backoff probation and the affected requests fail over to
    the other endpoints in deterministic ring order; once an endpoint
    accumulates more than ``retry_budget`` consecutive failures it is
    retired for good.  A flapping endpoint therefore rejoins mid-batch
    (its next probe succeeds and resets the state), while a dead one
    stops being probed after the budget is spent.

    **Byte-identity across rehabilitation**: a request that failed on an
    endpoint *after its frame may have been sent* is never retried on
    that endpoint — the serving side's pseudonym counters could have
    advanced for its user, and a replay there would publish different
    ``user#k`` ids.  Failed-over requests go only to endpoints that have
    never seen them (dial-phase failures, where no frame was sent, are
    exempt), so the published bytes match serial on every path.

    **Auth**: with ``auth_key`` set every connection authenticates
    before dispatch.  An :class:`~repro.errors.AuthenticationError` is
    *fatal* and propagates immediately — a misconfigured key fails
    identically on every endpoint and every retry, so burning the retry
    budget on it would only hide the real problem.
    """

    def __init__(
        self,
        endpoints: Sequence[Any],
        timeout: float = 120.0,
        max_inflight: int = 4,
        retry_budget: int = 3,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max: float = 2.0,
        auth_key: Optional[bytes] = None,
        wire_versions: Sequence[int] = SUPPORTED_WIRE_VERSIONS,
    ) -> None:
        self.endpoints = [parse_endpoint(e) for e in endpoints]
        if not self.endpoints:
            raise ConfigurationError("RemoteClusterClient needs >= 1 endpoint")
        if int(max_inflight) < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if int(retry_budget) < 0:
            raise ConfigurationError(
                f"retry_budget must be >= 0, got {retry_budget}"
            )
        if float(backoff_base) <= 0 or float(backoff_max) <= 0:
            raise ConfigurationError(
                f"backoff times must be positive, got base={backoff_base}, "
                f"max={backoff_max}"
            )
        if float(backoff_factor) < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {backoff_factor}"
            )
        self.timeout = float(timeout)
        self.max_inflight = int(max_inflight)
        self.retry_budget = int(retry_budget)
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)
        self.backoff_max = float(backoff_max)
        self.auth_key = None if auth_key is None else bytes(auth_key)
        # Validated by each AsyncServiceClient; per-connection outcomes
        # may differ (a mixed cluster downgrades only its v1 endpoints).
        self.wire_versions = tuple(sorted({int(v) for v in wire_versions}))
        n = len(self.endpoints)
        self._clients: List[Optional[AsyncServiceClient]] = [None] * n
        self._health = [EndpointHealth() for _ in range(n)]
        self._conn_locks: Optional[List[asyncio.Lock]] = None
        self._slots: Optional[List[asyncio.Semaphore]] = None

    def _lazy_sync(self) -> None:
        # asyncio primitives must be created inside the running loop's
        # context; run() is the first point we are guaranteed to have one.
        if self._conn_locks is None:
            n = len(self.endpoints)
            self._conn_locks = [asyncio.Lock() for _ in range(n)]
            self._slots = [
                asyncio.Semaphore(self.max_inflight) for _ in range(n)
            ]

    def health(self) -> List[EndpointHealth]:
        """Per-endpoint rehabilitation state (introspection for tests)."""
        return list(self._health)

    async def _client(self, index: int) -> AsyncServiceClient:
        assert self._conn_locks is not None
        async with self._conn_locks[index]:
            client = self._clients[index]
            if client is not None and client._broken is None:
                return client
            self._clients[index] = None
            health = self._health[index]
            if health.retired or health.available_at > time.monotonic():
                # The endpoint's state moved while we queued for the
                # lock (another request's dial failed first).
                raise _EndpointUnavailable()
            client = AsyncServiceClient(
                self.endpoints[index],
                timeout=self.timeout,
                auth_key=self.auth_key,
                wire_versions=self.wire_versions,
            )
            try:
                await client.connect()
            except AuthenticationError:
                await client.close()
                raise
            except (TransportError, ProtocolError, ConnectionError, OSError) as exc:
                await client.close()
                # Recorded here, under the connection lock, so one down
                # endpoint costs one budget point per actual dial — not
                # one per request queued behind the dial.
                self._record_failure(index, None)
                raise _DialFailed() from exc
            self._clients[index] = client
            return client

    def _record_failure(self, index: int, client: Optional[Any]) -> None:
        health = self._health[index]
        if client is not None:
            if any(blamed is client for blamed in health.blamed):
                return  # this connection's death was already counted
            health.blamed.append(client)
        health.failures += 1
        if health.failures > self.retry_budget:
            health.retired = True
            return
        backoff = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (health.failures - 1),
        )
        health.available_at = time.monotonic() + backoff

    def _record_success(self, index: int) -> None:
        health = self._health[index]
        health.failures = 0
        health.available_at = 0.0
        health.blamed.clear()

    async def _request_with_failover(
        self, shard: int, message: Message
    ) -> Message:
        n = len(self.endpoints)
        last: Optional[Exception] = None
        # Endpoints this request's frame may have reached: never retried
        # there (see the byte-identity note in the class docstring).
        attempted: set = set()
        while True:
            # Deterministic candidate order for this shard: primary
            # first, then the others in ring order.
            now = time.monotonic()
            index: Optional[int] = None
            wait_until: Optional[float] = None
            for offset in range(n):
                i = (shard + offset) % n
                health = self._health[i]
                if health.retired or i in attempted:
                    continue
                if health.available_at > now:
                    # On probation: usable later, note the deadline.
                    wait_until = (
                        health.available_at
                        if wait_until is None
                        else min(wait_until, health.available_at)
                    )
                    continue
                index = i
                break
            if index is None:
                if wait_until is None:
                    raise TransportError(
                        f"all {n} endpoints failed; last error: {last}"
                    )
                await asyncio.sleep(max(0.0, wait_until - now) + 1e-3)
                continue
            assert self._slots is not None
            try:
                client = await self._client(index)
            except _EndpointUnavailable:
                continue  # state advanced under us; re-evaluate
            except AuthenticationError:
                raise  # fatal everywhere: do not burn the budget on it
            except _DialFailed as exc:
                # No frame was sent, so this endpoint stays retryable
                # for THIS request once its probation expires.
                last = exc.__cause__
                continue
            try:
                async with self._slots[index]:
                    if client._broken is not None:
                        # The connection died while this request queued
                        # for its in-flight slot: provably no frame of
                        # OURS was sent, so the endpoint stays retryable
                        # for this request (unlike the except branch
                        # below, where the frame may have gone out).
                        self._record_failure(index, client)  # dedup by blame
                        last = TransportError(
                            f"connection to {self.endpoints[index].label()} "
                            f"broke while queued: {client._broken}"
                        )
                        continue
                    reply = await client.request(message)
            except AuthenticationError:
                raise
            except MessageEncodeError:
                # Our own message is unencodable (e.g. a NaN coordinate),
                # raised before any frame left this process: the caller's
                # problem, deterministic on every endpoint — propagate
                # without blaming the endpoint.
                raise
            except (TransportError, ProtocolError, ConnectionError, OSError) as exc:
                self._record_failure(index, client)
                attempted.add(index)
                last = exc
                continue
            if isinstance(reply, ErrorEnvelope) and reply.code == "auth":
                # A keyless client against a keyed server: every verb on
                # every endpoint gets this envelope — fatal-fast, like a
                # wrong key, instead of round-tripping the whole batch.
                raise AuthenticationError(reply.message)
            self._record_success(index)
            return reply

    async def run(
        self, requests: Sequence[Tuple[int, Message]]
    ) -> List[Message]:
        """Dispatch every ``(shard, request)``; replies positionally."""
        self._lazy_sync()
        return list(
            await asyncio.gather(
                *(
                    self._request_with_failover(shard, message)
                    for shard, message in requests
                )
            )
        )

    async def close(self) -> None:
        for client in self._clients:
            if client is not None:
                await client.close()
        self._clients = [None] * len(self.endpoints)
