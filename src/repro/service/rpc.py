"""Socket transport for the protection service (TCP or unix domain).

The server is a thin asyncio shell around
:meth:`repro.service.api.ProtectionService.handle_wire`: one JSON line
in, one JSON line out, connections multiplexed on the event loop while
protection work runs on the pool.  The client SDK
(:class:`ServiceClient`) is deliberately synchronous — mobile-client
code and tests drive it like a function call — and shares every verb
with the loopback client through
:class:`~repro.service.api.ServiceClientBase`, so switching transports
is a one-line change::

    service = ProtectionService(engine)
    server = ServiceServer(service, host="127.0.0.1", port=0)
    address = server.start_background()          # ("127.0.0.1", 54321)
    with ServiceClient(host=address[0], port=address[1]) as client:
        receipt = client.upload(trace)
        busy = client.top_cells(k=5)
    server.stop_background()

``python -m repro serve`` / ``python -m repro request`` expose the same
pair on the command line.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from typing import Any, Optional, Tuple, Union

from repro.errors import ConfigurationError, ProtocolError
from repro.service.api import (
    ErrorEnvelope,
    Message,
    ProtectionService,
    ServiceClientBase,
    decode_message,
    encode_message,
)

#: Generous per-line cap: a month-long trace at 1 Hz is ~10 MB of JSON.
MAX_LINE_BYTES = 64 * 1024 * 1024


class ServiceServer:
    """Serve a :class:`ProtectionService` over TCP or a unix socket.

    Exactly one of ``(host, port)`` or ``unix_path`` addresses the
    server.  ``port=0`` binds an ephemeral port; the bound address is
    available as :attr:`address` once started.
    """

    def __init__(
        self,
        service: ProtectionService,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = int(port)
        self.unix_path = unix_path
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._thread_loop: Optional[asyncio.AbstractEventLoop] = None

    # -- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Cancellation (server shutdown) is absorbed so the connection
        # task always finishes cleanly: a task left in cancelled state
        # trips asyncio's stream done-callback on Python 3.11.
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        encode_message(
                            ErrorEnvelope(
                                code="protocol",
                                message=f"line exceeds {MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                writer.write(await self.service.handle_wire(line))
                await writer.drain()
        except asyncio.CancelledError:
            pass
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError):
                pass

    # -- async lifecycle --------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (idempotent)."""
        if self._server is not None:
            return
        if self.unix_path is not None:
            # A killed/crashed predecessor leaves its socket file behind
            # (asyncio does not unlink on close either), which would make
            # every restart fail with EADDRINUSE.  Only ever remove an
            # actual socket — anything else at that path is a user error.
            import os
            import stat

            try:
                if stat.S_ISSOCK(os.stat(self.unix_path).st_mode):
                    os.unlink(self.unix_path)
            except FileNotFoundError:
                pass
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path, limit=MAX_LINE_BYTES
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self.port,
                limit=MAX_LINE_BYTES,
            )
            self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> Union[str, Tuple[str, int]]:
        """Where clients connect: a unix path or ``(host, port)``."""
        if self.unix_path is not None:
            return self.unix_path
        return (self.host, self.port)

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def run(self) -> None:
        """Blocking entry point (the ``repro serve`` command)."""
        try:
            asyncio.run(self.serve_forever())
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass

    # -- background-thread lifecycle (tests, demos, benchmarks) ----------

    def start_background(self) -> Union[str, Tuple[str, int]]:
        """Run the server on a dedicated thread; returns the bound address."""
        if self._thread is not None:
            return self.address
        ready = threading.Event()
        startup: dict = {}

        def _serve() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._thread_loop = loop
            try:
                loop.run_until_complete(self.start())
            except Exception as exc:  # pragma: no cover - bind failures
                startup["error"] = exc
                ready.set()
                loop.close()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.stop())
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.run_until_complete(loop.shutdown_default_executor())
                loop.close()

        self._thread = threading.Thread(
            target=_serve, name="mood-service-server", daemon=True
        )
        self._thread.start()
        ready.wait()
        if "error" in startup:
            self._thread.join()
            self._thread = None
            raise startup["error"]
        return self.address

    def stop_background(self) -> None:
        """Stop a :meth:`start_background` server and join its thread."""
        if self._thread is None:
            return
        assert self._thread_loop is not None
        self._thread_loop.call_soon_threadsafe(self._thread_loop.stop)
        self._thread.join()
        self._thread = None
        self._thread_loop = None

    def __enter__(self) -> "ServiceServer":
        self.start_background()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop_background()


class ServiceClient(ServiceClientBase):
    """Synchronous socket client for a running :class:`ServiceServer`.

    Connects over TCP (``host``/``port``) or a unix socket
    (``unix_path``); usable as a context manager.  All verb methods
    (``protect`` / ``upload`` / ``query_count`` / ``top_cells`` /
    ``stats``) come from :class:`~repro.service.api.ServiceClientBase`.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        timeout: float = 60.0,
    ) -> None:
        if unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(unix_path)
        elif host is not None and port is not None:
            sock = socket.create_connection((host, int(port)), timeout=timeout)
        else:
            raise ConfigurationError(
                "ServiceClient needs either host+port or unix_path"
            )
        self._sock = sock
        self._file = sock.makefile("rwb")

    def request(self, message: Message) -> Message:
        self._file.write(encode_message(message))
        self._file.flush()
        line = self._file.readline(MAX_LINE_BYTES)
        if not line:
            raise ProtocolError("server closed the connection mid-request")
        if not line.endswith(b"\n"):
            # A reply longer than the cap would leave its tail unread and
            # desynchronize every later request — fail loudly instead.
            raise ProtocolError(
                f"reply exceeds {MAX_LINE_BYTES} bytes (truncated); "
                "close this connection"
            )
        return decode_message(line)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
