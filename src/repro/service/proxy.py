"""The MooD protection proxy.

The deployment unit of the paper: a trusted middleware sitting between
the mobile clients and the crowdsensing server.  Every daily chunk goes
through the full MooD cascade (single LPPM → compositions → fine-grained
splitting); only protected pieces — under fresh pseudonyms — are
forwarded, and vulnerable leftovers are dropped on the proxy.

The proxy also keeps operational counters (uploads, LPPM applications,
erased records) so the deployment experiment can report middleware-side
cost alongside privacy outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.engine import ProtectionEngine
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.service.client import UploadChunk


def _coerce_engine(
    engine: Optional[ProtectionEngine],
    mood: Optional[ProtectionEngine],
    who: str,
) -> ProtectionEngine:
    """Accept the legacy ``mood=`` keyword (with a deprecation warning)."""
    if mood is not None:
        if engine is not None:
            raise ConfigurationError(f"{who} got both 'engine' and legacy 'mood'")
        import warnings

        warnings.warn(
            f"the {who} 'mood' keyword is deprecated; pass 'engine' instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return mood
    if engine is None:
        raise ConfigurationError(f"{who} needs a ProtectionEngine")
    return engine


@dataclass
class ProxyStats:
    """Operational counters of the proxy."""

    chunks_processed: int = 0
    records_in: int = 0
    records_published: int = 0
    records_erased: int = 0
    pieces_published: int = 0
    #: Mechanism name -> number of chunks it ended up protecting.
    mechanism_usage: Dict[str, int] = field(default_factory=dict)

    @property
    def erasure_ratio(self) -> float:
        """Share of incoming records the proxy had to drop."""
        if self.records_in == 0:
            return 0.0
        return self.records_erased / self.records_in


class MoodProxy:
    """Applies MooD to each uploaded chunk and pseudonymises the output."""

    def __init__(
        self,
        engine: Optional[ProtectionEngine] = None,
        *,
        mood: Optional[ProtectionEngine] = None,
    ) -> None:
        self.engine = _coerce_engine(engine, mood, "MoodProxy")
        self.stats = ProxyStats()
        self._piece_counter: Dict[str, int] = {}

    @property
    def mood(self) -> ProtectionEngine:
        """Backwards-compatible alias for :attr:`engine`."""
        return self.engine

    def process(self, chunk: UploadChunk) -> List[Trace]:
        """Protect one daily chunk; returns the publishable sub-traces.

        Pseudonyms are unique across the whole campaign (``user#k`` with
        a per-user running counter), so two days of the same user never
        share a published id.
        """
        result = self.engine.protect(chunk.trace)
        self.stats.chunks_processed += 1
        self.stats.records_in += chunk.records
        self.stats.records_erased += result.erased_records
        published: List[Trace] = []
        for piece in result.pieces:
            k = self._piece_counter.get(chunk.user_id, 0)
            self._piece_counter[chunk.user_id] = k + 1
            pseudonym = f"{chunk.user_id}#{k}"
            published.append(piece.published.with_user(pseudonym))
            self.stats.pieces_published += 1
            self.stats.records_published += len(piece.published)
            self.stats.mechanism_usage[piece.mechanism] = (
                self.stats.mechanism_usage.get(piece.mechanism, 0) + 1
            )
        return published
