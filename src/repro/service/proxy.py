"""The MooD protection proxy.

The deployment unit of the paper: a trusted middleware sitting between
the mobile clients and the crowdsensing server.  Every daily chunk goes
through the full MooD cascade (single LPPM → compositions → fine-grained
splitting); only protected pieces — under fresh pseudonyms — are
forwarded, and vulnerable leftovers are dropped on the proxy.

Pseudonym management is factored into :class:`PseudonymProvider` so the
service API can scope it per session: the proxy only guarantees that
whatever provider it is given sees pieces in a deterministic order.

The proxy also keeps operational counters (uploads, LPPM applications,
erased records) so the deployment experiment can report middleware-side
cost alongside privacy outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.engine import MoodResult, ProtectedPiece, ProtectionEngine
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.service.client import UploadChunk


def coerce_engine(
    engine: Optional[ProtectionEngine],
    mood: Optional[ProtectionEngine],
    who: str,
) -> ProtectionEngine:
    """Accept the legacy ``mood=`` keyword (with a deprecation warning)."""
    if mood is not None:
        if engine is not None:
            raise ConfigurationError(f"{who} got both 'engine' and legacy 'mood'")
        import warnings

        warnings.warn(
            f"the {who} 'mood' keyword is deprecated; pass 'engine' instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return mood
    if engine is None:
        raise ConfigurationError(f"{who} needs a ProtectionEngine")
    return engine


#: Deprecated alias kept for callers of the old private name.
_coerce_engine = coerce_engine


class PseudonymProvider:
    """Allocates the published identity of each protected piece.

    The proxy asks for one pseudonym per published piece, in
    deterministic (piece) order; implementations must never hand out the
    raw user id and must keep pseudonyms unique across the session so
    two pieces of the same user are never linkable through their ids.
    """

    def pseudonym_for(self, user_id: str) -> str:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all allocations (start a fresh session)."""


class SessionPseudonyms(PseudonymProvider):
    """The paper's scheme: ``user#k`` with a per-user running counter.

    Counters span the whole session, so two days of the same user never
    share a published id.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def pseudonym_for(self, user_id: str) -> str:
        k = self._counters.get(user_id, 0)
        self._counters[user_id] = k + 1
        return f"{user_id}#{k}"

    def reset(self) -> None:
        self._counters.clear()


@dataclass
class ProxyStats:
    """Operational counters of the proxy."""

    chunks_processed: int = 0
    records_in: int = 0
    records_published: int = 0
    records_erased: int = 0
    pieces_published: int = 0
    #: Mechanism name -> number of chunks it ended up protecting.
    mechanism_usage: Dict[str, int] = field(default_factory=dict)

    @property
    def erasure_ratio(self) -> float:
        """Share of incoming records the proxy had to drop."""
        if self.records_in == 0:
            return 0.0
        return self.records_erased / self.records_in


class MoodProxy:
    """Applies MooD to each uploaded chunk and pseudonymises the output."""

    def __init__(
        self,
        engine: Optional[ProtectionEngine] = None,
        *,
        mood: Optional[ProtectionEngine] = None,
        pseudonyms: Optional[PseudonymProvider] = None,
    ) -> None:
        self.engine = coerce_engine(engine, mood, "MoodProxy")
        self.stats = ProxyStats()
        self.pseudonyms = pseudonyms if pseudonyms is not None else SessionPseudonyms()

    @property
    def mood(self) -> ProtectionEngine:
        """Backwards-compatible alias for :attr:`engine`."""
        return self.engine

    def protect_chunk(self, chunk: UploadChunk) -> MoodResult:
        """Protect one daily chunk; pieces carry session-scoped pseudonyms.

        The full per-chunk outcome (published pieces *and* erased
        leftovers) with each piece re-published under the pseudonym the
        session provider allocates — the richer sibling of
        :meth:`process` used by the service API, which needs mechanism
        and distortion per piece on the wire.
        """
        result = self.engine.protect(chunk.trace)
        self.stats.chunks_processed += 1
        self.stats.records_in += chunk.records
        self.stats.records_erased += result.erased_records
        renewed: List[ProtectedPiece] = []
        for piece in result.pieces:
            pseudonym = self.pseudonyms.pseudonym_for(chunk.user_id)
            renewed.append(
                ProtectedPiece(
                    pseudonym=pseudonym,
                    original_user=piece.original_user,
                    original=piece.original,
                    published=piece.published.with_user(pseudonym),
                    mechanism=piece.mechanism,
                    distortion_m=piece.distortion_m,
                )
            )
            self.stats.pieces_published += 1
            self.stats.records_published += len(piece.published)
            self.stats.mechanism_usage[piece.mechanism] = (
                self.stats.mechanism_usage.get(piece.mechanism, 0) + 1
            )
        result.pieces = renewed
        return result

    def process(self, chunk: UploadChunk) -> List[Trace]:
        """Protect one daily chunk; returns the publishable sub-traces.

        Pseudonyms are unique across the whole campaign (``user#k`` with
        a per-user running counter), so two days of the same user never
        share a published id.
        """
        return [piece.published for piece in self.protect_chunk(chunk).pieces]
