"""Mobile client of the crowdsensing campaign.

Each client owns one user's (synthetic) device: it buffers the GPS fixes
the device produces and, once a day, hands the buffered chunk to the
MooD proxy for protection and upload (paper §3.4: "a crowdsensing
application where users send their data daily").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.split import split_fixed_time
from repro.core.trace import Trace


@dataclass
class UploadChunk:
    """One daily upload: the raw sub-trace a client submits to the proxy."""

    user_id: str
    day_index: int
    trace: Trace

    @property
    def records(self) -> int:
        return len(self.trace)


class MobileClient:
    """Buffers a user's daily mobility and emits upload chunks."""

    def __init__(self, trace: Trace, chunk_s: float = 86_400.0) -> None:
        self.user_id = trace.user_id
        self.chunk_s = float(chunk_s)
        self._chunks: List[Trace] = split_fixed_time(trace, chunk_s) if len(trace) else []
        self._next = 0

    @property
    def days_total(self) -> int:
        return len(self._chunks)

    @property
    def days_remaining(self) -> int:
        return len(self._chunks) - self._next

    def next_upload(self) -> Optional[UploadChunk]:
        """The next daily chunk, or ``None`` when the campaign is over."""
        if self._next >= len(self._chunks):
            return None
        chunk = UploadChunk(self.user_id, self._next, self._chunks[self._next])
        self._next += 1
        return chunk

    def upload_times(self, campaign_start: float) -> List[float]:
        """Virtual times at which this client wakes up to upload.

        Uploads happen at the end of each chunk's day, relative to the
        campaign start.
        """
        return [
            campaign_start + (i + 1) * self.chunk_s for i in range(len(self._chunks))
        ]
