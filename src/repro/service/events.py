"""A minimal discrete-event simulation kernel.

The deployment experiment (DESIGN.md D1) models a crowdsensing campaign:
mobile clients collect GPS fixes all day and upload a daily chunk
through a MooD proxy to a collection server.  The kernel here is a
classic event-queue simulator — deterministic, single-threaded, with
monotonic virtual time — sized exactly for that purpose.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")


class EventLoop:
    """Deterministic discrete-event loop with virtual time."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[_ScheduledEvent] = []
        self._counter = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    def schedule(self, time: float, action: Callable[[], None], label: str = "") -> None:
        """Schedule *action* at absolute virtual *time* (>= now)."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        heapq.heappush(self._queue, _ScheduledEvent(time, next(self._counter), action, label))

    def schedule_in(self, delay: float, action: Callable[[], None], label: str = "") -> None:
        """Schedule *action* after *delay* seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.schedule(self._now + delay, action, label)

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Process events (chronologically) until the queue drains.

        With *until*, stops before the first event strictly later than
        that time (the event stays queued).  Returns the number of events
        processed by this call.
        """
        processed = 0
        while self._queue and processed < max_events:
            if until is not None and self._queue[0].time > until:
                break
            event = heapq.heappop(self._queue)
            self._now = max(self._now, event.time)
            event.action()
            processed += 1
            self._processed += 1
        if until is not None and self._now < until:
            self._now = until
        return processed

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
