"""The crowdsensing collection server.

Receives pseudonymised, protected sub-traces from the proxy and serves
the aggregate queries that motivate the campaign (paper §3.4/§4.6:
count-style analyses such as noise or pollution mapping).  The server
never sees raw data, so its query results quantify the *utility* that
survives protection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.dataset import MobilityDataset
from repro.core.trace import Trace
from repro.geo.grid import Cell, MetricGrid


@dataclass
class ServerStats:
    uploads: int = 0
    records: int = 0
    distinct_pseudonyms: int = 0


class CollectionServer:
    """Stores published sub-traces and answers spatial count queries."""

    def __init__(self, grid: Optional[MetricGrid] = None) -> None:
        self.grid = grid or MetricGrid(cell_size_m=800.0)
        self._traces: List[Trace] = []
        self._cell_counts: Dict[Cell, int] = {}
        self._pseudonyms: set = set()
        # Incremental counters: ``stats`` is read on every service
        # round-trip, so it must not rescan all stored traces.
        self._uploads = 0
        self._records = 0

    def receive(self, trace: Trace) -> None:
        """Ingest one published sub-trace."""
        self._traces.append(trace)
        self._pseudonyms.add(trace.user_id)
        self._uploads += 1
        self._records += len(trace)
        for i in range(len(trace)):
            cell = self.grid.cell_of(float(trace.lats[i]), float(trace.lngs[i]))
            self._cell_counts[cell] = self._cell_counts.get(cell, 0) + 1

    @property
    def stats(self) -> ServerStats:
        return ServerStats(
            uploads=self._uploads,
            records=self._records,
            distinct_pseudonyms=len(self._pseudonyms),
        )

    # -- analytics queries -------------------------------------------------

    def count_in_cell(self, lat: float, lng: float) -> int:
        """Count query: records observed in the cell containing a point."""
        return self._cell_counts.get(self.grid.cell_of(lat, lng), 0)

    def top_cells(self, k: int) -> List[Tuple[Cell, int]]:
        """The *k* busiest cells (e.g. a congestion map)."""
        return sorted(self._cell_counts.items(), key=lambda kv: (-kv[1], kv[0]))[:k]

    def density_correlation(self, reference: MobilityDataset) -> float:
        """Pearson correlation between collected and true per-cell counts.

        This is the utility readout of the deployment experiment: how
        faithfully a count-query analysis over the protected uploads
        matches the same analysis over the raw data.
        """
        true_counts: Dict[Cell, int] = {}
        for trace in reference:
            for i in range(len(trace)):
                cell = self.grid.cell_of(float(trace.lats[i]), float(trace.lngs[i]))
                true_counts[cell] = true_counts.get(cell, 0) + 1
        cells = sorted(set(true_counts) | set(self._cell_counts))
        if len(cells) < 2:
            return 1.0
        import numpy as np

        a = np.array([true_counts.get(c, 0) for c in cells], dtype=np.float64)
        b = np.array([self._cell_counts.get(c, 0) for c in cells], dtype=np.float64)
        if np.array_equal(a, b):
            return 1.0
        if a.std() == 0 or b.std() == 0:
            return 0.0
        return float(np.corrcoef(a, b)[0, 1])

    def as_dataset(self, name: str = "collected") -> MobilityDataset:
        """All received sub-traces as a dataset (for attack audits)."""
        out = MobilityDataset(name)
        for trace in self._traces:
            out.add(trace)
        return out
