"""End-to-end crowdsensing campaign simulation.

Wires clients, the protection service, and the collection server onto
the discrete-event loop: every client uploads its daily chunk at the end
of each campaign day; the service protects (or erases) it and ingests
the published pieces.  The campaign report aggregates privacy,
operational, and utility outcomes — the deployment-side evidence the
paper's title promises.

Since the service API redesign the campaign no longer calls the proxy
directly: each upload goes through a
:class:`~repro.service.api.LoopbackClient` — the same messages, codec,
and :class:`~repro.service.api.ProtectionService` dispatch as the socket
deployment (`python -m repro serve`), minus the socket.  Simulation and
deployment exercise one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.dataset import MobilityDataset
from repro.core.engine import ProtectionEngine
from repro.errors import ConfigurationError
from repro.service.api import LoopbackClient, ProtectionService
from repro.service.client import MobileClient
from repro.service.events import EventLoop
from repro.service.proxy import MoodProxy, ProxyStats, coerce_engine
from repro.service.server import CollectionServer, ServerStats


@dataclass
class CampaignReport:
    """Outcome of a simulated campaign."""

    days: float
    clients: int
    proxy: ProxyStats
    server: ServerStats
    #: Pearson correlation of per-cell counts, protected vs raw.
    count_query_fidelity: float
    #: Virtual duration of the simulation, seconds.
    virtual_duration_s: float

    @property
    def data_loss(self) -> float:
        return self.proxy.erasure_ratio


class CrowdsensingCampaign:
    """Simulate a daily-upload campaign over a dataset of raw traces."""

    def __init__(
        self,
        raw: MobilityDataset,
        engine: Optional[ProtectionEngine] = None,
        chunk_s: float = 86_400.0,
        *,
        mood: Optional[ProtectionEngine] = None,
        service: Optional[ProtectionService] = None,
    ) -> None:
        self.raw = raw
        if service is None:
            service = ProtectionService(coerce_engine(engine, mood, "CrowdsensingCampaign"))
        elif engine is not None or mood is not None:
            raise ConfigurationError(
                "CrowdsensingCampaign got both a 'service' and an engine — "
                "pass one or the other"
            )
        self.service = service
        self.chunk_s = float(chunk_s)
        self.clients: List[MobileClient] = [
            MobileClient(trace, chunk_s) for trace in raw.traces() if len(trace) > 0
        ]

    @property
    def proxy(self) -> MoodProxy:
        """The service's proxy (cascade + pseudonyms + counters)."""
        return self.service.proxy

    @property
    def server(self) -> CollectionServer:
        """The service's collection server (protected corpus + queries)."""
        return self.service.server

    def run(self) -> CampaignReport:
        """Run the full campaign on the event loop and report."""
        if not self.clients:
            raise ValueError("campaign has no active clients")
        start = min(c._chunks[0].start_time() for c in self.clients if c.days_total)
        loop = EventLoop(start_time=start)
        rpc = LoopbackClient(self.service)

        def make_upload(client: MobileClient):
            def upload() -> None:
                chunk = client.next_upload()
                if chunk is None:
                    return
                rpc.upload(chunk.trace, day_index=chunk.day_index)

            return upload

        for client in self.clients:
            action = make_upload(client)
            for t in client.upload_times(start):
                loop.schedule(t, action, label=f"upload:{client.user_id}")
        try:
            loop.run()
        finally:
            rpc.close()
        fidelity = self.server.density_correlation(self.raw)
        return CampaignReport(
            days=(loop.now - start) / 86_400.0,
            clients=len(self.clients),
            proxy=self.proxy.stats,
            server=self.server.stats,
            count_query_fidelity=fidelity,
            virtual_duration_s=loop.now - start,
        )
