"""End-to-end crowdsensing campaign simulation.

Wires clients, the MooD proxy, and the collection server onto the
discrete-event loop: every client uploads its daily chunk at the end of
each campaign day; the proxy protects (or erases) it; the server ingests
the published pieces.  The campaign report aggregates privacy,
operational, and utility outcomes — the deployment-side evidence the
paper's title promises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.dataset import MobilityDataset
from repro.core.engine import ProtectionEngine
from repro.service.client import MobileClient
from repro.service.events import EventLoop
from repro.service.proxy import MoodProxy, ProxyStats, _coerce_engine
from repro.service.server import CollectionServer, ServerStats


@dataclass
class CampaignReport:
    """Outcome of a simulated campaign."""

    days: float
    clients: int
    proxy: ProxyStats
    server: ServerStats
    #: Pearson correlation of per-cell counts, protected vs raw.
    count_query_fidelity: float
    #: Virtual duration of the simulation, seconds.
    virtual_duration_s: float

    @property
    def data_loss(self) -> float:
        return self.proxy.erasure_ratio


class CrowdsensingCampaign:
    """Simulate a daily-upload campaign over a dataset of raw traces."""

    def __init__(
        self,
        raw: MobilityDataset,
        engine: Optional[ProtectionEngine] = None,
        chunk_s: float = 86_400.0,
        *,
        mood: Optional[ProtectionEngine] = None,
    ) -> None:
        self.raw = raw
        self.proxy = MoodProxy(_coerce_engine(engine, mood, "CrowdsensingCampaign"))
        self.server = CollectionServer()
        self.chunk_s = float(chunk_s)
        self.clients: List[MobileClient] = [
            MobileClient(trace, chunk_s) for trace in raw.traces() if len(trace) > 0
        ]

    def run(self) -> CampaignReport:
        """Run the full campaign on the event loop and report."""
        if not self.clients:
            raise ValueError("campaign has no active clients")
        start = min(c._chunks[0].start_time() for c in self.clients if c.days_total)
        loop = EventLoop(start_time=start)

        def make_upload(client: MobileClient):
            def upload() -> None:
                chunk = client.next_upload()
                if chunk is None:
                    return
                for piece in self.proxy.process(chunk):
                    self.server.receive(piece)

            return upload

        for client in self.clients:
            action = make_upload(client)
            for t in client.upload_times(start):
                loop.schedule(t, action, label=f"upload:{client.user_id}")
        loop.run()
        fidelity = self.server.density_correlation(self.raw)
        return CampaignReport(
            days=(loop.now - start) / 86_400.0,
            clients=len(self.clients),
            proxy=self.proxy.stats,
            server=self.server.stats,
            count_query_fidelity=fidelity,
            virtual_duration_s=loop.now - start,
        )
