"""A single spatio-temporal record ``r = (lat, lng, t)`` (paper §2.1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidRecordError


@dataclass(frozen=True, order=True)
class Record:
    """One GPS fix: latitude/longitude in decimal degrees, POSIX timestamp.

    Ordering is lexicographic on ``(t, lat, lng)`` so that sorting a list
    of records sorts them chronologically.
    """

    t: float
    lat: float
    lng: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise InvalidRecordError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lng <= 180.0:
            raise InvalidRecordError(f"longitude out of range: {self.lng}")
        if not self.t == self.t or self.t in (float("inf"), float("-inf")):
            raise InvalidRecordError(f"timestamp must be finite, got {self.t}")

    def shifted(self, dt: float) -> "Record":
        """Copy of this record with the timestamp moved by *dt* seconds."""
        return Record(self.t + dt, self.lat, self.lng)

    def moved(self, lat: float, lng: float) -> "Record":
        """Copy of this record at a new position, same timestamp."""
        return Record(self.t, lat, lng)
