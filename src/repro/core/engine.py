"""The unified protection engine (paper §3, Algorithm 1) and batch API.

This module is the system's front door.  It hosts:

* the MooD cascade itself — :class:`ProtectionEngine.protect` runs the
  three stages of Algorithm 1 (single-LPPM search, multi-LPPM
  composition search, recursive fine-grained splitting) for one user;
* the dataset-level batch API — :meth:`ProtectionEngine.protect_dataset`
  and the unified :meth:`ProtectionEngine.evaluate` (subsuming the
  legacy ``evaluate_lppm`` / ``evaluate_hybrid`` / ``evaluate_mood``
  trio) fan the per-user work out over a pluggable executor;
* the executors — ``serial``, ``process`` (multiprocessing), ``async``
  (asyncio fan-out over a thread/process pool, for the service/proxy
  path), and ``sharded`` (deterministic user-hash partitioning across
  per-shard process pools, for campaign-scale corpora).  Per-user
  protection is embarrassingly parallel and every random draw derives
  from :func:`repro.rng.stable_user_seed`, so every backend publishes
  byte-identical datasets to the serial one;
* the declarative entry point — :meth:`ProtectionEngine.from_config`
  rebuilds the whole engine from a :class:`repro.config.ProtectionConfig`
  via the component registries.

The legacy :class:`repro.core.mood.Mood` class is a thin deprecated
subclass of :class:`ProtectionEngine`.
"""

from __future__ import annotations

import itertools
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.composition import ComposedLPPM, enumerate_compositions
from repro.core.dataset import MobilityDataset
from repro.core.featurecache import FeatureCache
from repro.core.search import CompositionSearchStrategy
from repro.core.split import split_fixed_time, split_in_half
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.lppm.base import LPPM
from repro.lppm.hybrid import HybridLPPM, HybridResult, is_protected
from repro.metrics.dataloss import data_loss
from repro.metrics.distortion import spatial_temporal_distortion
from repro.registry import (
    build,
    normalize_spec,
    register_executor,
    register_split_policy,
)
from repro.rng import make_rng, stable_user_seed
from repro.types import NO_GUESS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.attacks.base import Attack
    from repro.config import ProtectionConfig

#: Paper defaults (§4.2): recursion floor and crowdsensing chunk length.
DEFAULT_DELTA_S = 4 * 3600.0
DEFAULT_CHUNK_S = 24 * 3600.0


# ---------------------------------------------------------------------------
# Per-user results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProtectedPiece:
    """One published sub-trace: obfuscated data under a fresh pseudonym."""

    pseudonym: str
    original_user: str
    #: The raw sub-trace this piece protects.
    original: Trace
    #: The published, obfuscated sub-trace (``user_id == pseudonym``).
    published: Trace
    #: Name of the protecting mechanism or composition chain.
    mechanism: str
    #: STD of the published piece against its raw sub-trace, metres.
    distortion_m: float


@dataclass
class MoodResult:
    """Outcome of protecting one user's trace."""

    user_id: str
    pieces: List[ProtectedPiece] = field(default_factory=list)
    #: Raw sub-traces that could not be protected and were erased.
    erased: List[Trace] = field(default_factory=list)
    #: Record count of the input trace.
    original_records: int = 0

    @property
    def erased_records(self) -> int:
        return sum(len(t) for t in self.erased)

    @property
    def published_records(self) -> int:
        """Records of the *raw* sub-traces that got published protected."""
        return sum(len(p.original) for p in self.pieces)

    @property
    def fully_protected(self) -> bool:
        """True iff nothing was erased (the user's "disease" was cured)."""
        return self.original_records > 0 and self.erased_records == 0

    @property
    def whole_trace_protected(self) -> bool:
        """True iff the trace was protected without fine-grained splitting."""
        return self.fully_protected and len(self.pieces) == 1

    @property
    def data_loss(self) -> float:
        """Per-user share of erased records (Eq. 7 restricted to this user)."""
        if self.original_records == 0:
            return 0.0
        return self.erased_records / self.original_records

    def mean_distortion_m(self) -> float:
        """Record-weighted mean STD over published pieces (``inf`` if none)."""
        total = self.published_records
        if total == 0:
            return float("inf")
        return sum(p.distortion_m * len(p.original) for p in self.pieces) / total


def _renew_ids(result: MoodResult) -> None:
    """Line 34: publish each piece under a fresh pseudonym ``user#k``.

    Pseudonyms are deterministic (piece order) so repeated runs publish
    identical datasets.  A single whole-trace piece keeps suffix 0 as
    well — the published id never reveals whether splitting happened.
    """
    renewed: List[ProtectedPiece] = []
    for k, piece in enumerate(result.pieces):
        pseudonym = f"{piece.original_user}#{k}"
        renewed.append(
            ProtectedPiece(
                pseudonym=pseudonym,
                original_user=piece.original_user,
                original=piece.original,
                published=piece.published.with_user(pseudonym),
                mechanism=piece.mechanism,
                distortion_m=piece.distortion_m,
            )
        )
    result.pieces = renewed


# ---------------------------------------------------------------------------
# Split policies (registry kind "split_policy")
# ---------------------------------------------------------------------------


@register_split_policy("gap")
def _split_at_largest_gap(trace: Trace) -> Tuple[Trace, Trace]:
    """Split at the largest inter-record time gap (paper §6 alternative).

    Falls back to the temporal midpoint when the trace has no interior
    gap (fewer than 3 records).
    """
    import numpy as np

    if len(trace) < 3:
        return split_in_half(trace)
    gaps = np.diff(trace.timestamps)
    cut_index = int(np.argmax(gaps)) + 1
    if cut_index <= 0 or cut_index >= len(trace):
        return split_in_half(trace)
    cut_time = float(trace.timestamps[cut_index])
    left = trace.slice_time(trace.start_time(), cut_time)
    right = trace.slice_time(cut_time, np.nextafter(trace.end_time(), np.inf))
    return (left, right)


@register_split_policy("inter-poi")
def _split_between_pois(trace: Trace) -> Tuple[Trace, Trace]:
    """Split between the two consecutive POI visits nearest the midpoint.

    Separating discriminative stays (§3.1: "splitting traces …
    inter-POIs") isolates mobility patterns better than a blind halving;
    traces with fewer than two POI visits fall back to halving.
    """
    import numpy as np

    from repro.poi.clustering import extract_pois

    visits = extract_pois(trace, diameter_m=200.0, min_dwell_s=3600.0)
    if len(visits) < 2:
        return split_in_half(trace)
    middle = trace.start_time() + trace.duration_s() / 2.0
    boundaries = [
        0.5 * (a.t_exit + b.t_enter) for a, b in zip(visits, visits[1:])
    ]
    cut_time = min(boundaries, key=lambda b: abs(b - middle))
    if cut_time <= trace.start_time() or cut_time >= trace.end_time():
        return split_in_half(trace)
    left = trace.slice_time(trace.start_time(), cut_time)
    right = trace.slice_time(cut_time, np.nextafter(trace.end_time(), np.inf))
    return (left, right)


# ---------------------------------------------------------------------------
# Executors (registry kind "executor")
# ---------------------------------------------------------------------------

# Worker-process state for ProcessExecutor: the engine is shipped once per
# worker via the pool initializer instead of once per task.
_WORKER: Dict[str, Any] = {}


def _pool_init(engine: "ProtectionEngine", method: str, kwargs: Dict[str, Any]) -> None:
    _WORKER["engine"] = engine
    _WORKER["method"] = method
    _WORKER["kwargs"] = kwargs


def _pool_run(item: Any) -> Tuple[Any, int]:
    engine = _WORKER["engine"]
    before = engine.evaluations
    out = getattr(engine, _WORKER["method"])(item, **_WORKER["kwargs"])
    return out, engine.evaluations - before


def _shm_attach(name: str) -> Any:
    """Attach a shared-memory segment without resource-tracker adoption.

    Before Python 3.13 (no ``track=`` kwarg) every attach registers the
    segment with a resource tracker, which may unlink it at worker exit
    — yanking the mapping out from under sibling workers (spawn), or
    corrupting the creator's registration in the shared tracker (fork).
    Suppressing the registration for the duration of the attach keeps
    ownership where it belongs: with the creating process.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _no_track(rname: str, rtype: str) -> None:
            if rtype != "shared_memory":
                original(rname, rtype)

        resource_tracker.register = _no_track
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _pool_init_shm(
    name: str, size: int, digest: str, method: str, kwargs: Dict[str, Any]
) -> None:
    """Worker initializer: load the engine from a shared-memory shipment.

    The blake2b fingerprint is verified before unpickling — a worker
    never runs against a segment that is not byte-for-byte the engine
    the parent shipped (stale name reuse, torn write, wrong segment).
    """
    import hashlib
    import pickle

    shm = _shm_attach(name)
    try:
        payload = bytes(shm.buf[:size])
    finally:
        shm.close()
    actual = hashlib.blake2b(payload, digest_size=16).hexdigest()
    if actual != digest:
        raise RuntimeError(
            f"engine shipment {name!r} fingerprint mismatch "
            f"(expected {digest}, segment holds {actual})"
        )
    _WORKER["engine"] = pickle.loads(payload)
    _WORKER["method"] = method
    _WORKER["kwargs"] = kwargs


#: Disambiguates concurrent shipments of identical content in one process.
_SHIPMENT_SEQ = itertools.count()


class _EngineShipment:
    """One pickled engine, shipped to every local worker via shared memory.

    The pool-initializer protocol (``initargs`` pickled per pool) ships
    the whole fitted engine — attack state included — once *per pool*;
    with sharded execution that is once per shard group.  This instead
    pickles the engine once, publishes the bytes in a
    :mod:`multiprocessing.shared_memory` segment keyed by content
    fingerprint, and hands workers only the (name, size, digest) triple;
    every pool of the batch shares the same segment.

    :meth:`pool_hooks` degrades gracefully: if the segment cannot be
    created (no /dev/shm, size limits, exotic platforms) it falls back
    to the legacy initargs protocol — same results, just more pickling.
    The creator must call :meth:`close` after the pools have joined.
    """

    def __init__(
        self, engine: "ProtectionEngine", method: str, kwargs: Dict[str, Any]
    ) -> None:
        import hashlib
        import pickle

        self._engine = engine
        self.method = method
        self.kwargs = kwargs
        self._payload = pickle.dumps(engine)
        self.digest = hashlib.blake2b(
            self._payload, digest_size=16
        ).hexdigest()
        self._shm: Optional[Any] = None

    def pool_hooks(self) -> Tuple[Any, Tuple[Any, ...]]:
        """``(initializer, initargs)`` for a worker pool."""
        try:
            return _pool_init_shm, self._shm_initargs()
        except Exception:  # noqa: BLE001 - any failure degrades, never aborts
            self.close()
            return _pool_init, (self._engine, self.method, self.kwargs)

    def _shm_initargs(self) -> Tuple[Any, ...]:
        if self._shm is None:
            import os
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(
                create=True,
                size=len(self._payload),
                name=f"repro-{self.digest[:12]}-{os.getpid()}-"
                f"{next(_SHIPMENT_SEQ)}",
            )
            shm.buf[: len(self._payload)] = self._payload
            self._shm = shm
        return (
            self._shm.name,
            len(self._payload),
            self.digest,
            self.method,
            self.kwargs,
        )

    def close(self) -> None:
        """Release and unlink the segment (call after pool join)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except OSError:  # pragma: no cover - close best-effort
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


@register_executor("serial")
class SerialExecutor:
    """Run the per-item work in-process, one item at a time."""

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = 1

    def map(
        self,
        engine: "ProtectionEngine",
        method: str,
        items: Sequence[Any],
        kwargs: Dict[str, Any],
    ) -> List[Any]:
        fn = getattr(engine, method)
        return [fn(item, **kwargs) for item in items]


@register_executor("process")
class ProcessExecutor:
    """Fan the per-item work out over a :mod:`multiprocessing` pool.

    Per-user protection shares no state (all randomness derives from
    :func:`repro.rng.stable_user_seed`), so results are identical to the
    serial executor; the engine's :attr:`~ProtectionEngine.evaluations`
    counter is reconciled from per-task deltas.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs

    def map(
        self,
        engine: "ProtectionEngine",
        method: str,
        items: Sequence[Any],
        kwargs: Dict[str, Any],
    ) -> List[Any]:
        import multiprocessing
        import os

        items = list(items)
        jobs = self.jobs or os.cpu_count() or 1
        jobs = max(1, min(int(jobs), len(items) or 1))
        if jobs == 1:
            return SerialExecutor().map(engine, method, items, kwargs)
        shipment = _EngineShipment(engine, method, kwargs)
        try:
            initializer, initargs = shipment.pool_hooks()
            with multiprocessing.Pool(
                jobs, initializer=initializer, initargs=initargs
            ) as pool:
                out = pool.map(_pool_run, items)
        finally:
            shipment.close()
        engine.evaluations += sum(delta for _, delta in out)
        return [result for result, _ in out]


# Thread-worker state for AsyncExecutor's thread pool: each worker thread
# owns a private engine clone, so no mutable state (evaluation counter,
# feature cache, fitted attacks) is ever shared between threads.  Created
# eagerly at import time — a lazy check-then-set would race when two
# worker initializers run concurrently.
_THREAD_STATE = threading.local()


def _thread_clone_init(payload: bytes, method: str, kwargs: Dict[str, Any]) -> None:
    import pickle

    _THREAD_STATE.engine = pickle.loads(payload)
    _THREAD_STATE.method = method
    _THREAD_STATE.kwargs = kwargs


def _thread_clone_run(item: Any) -> Tuple[Any, int]:
    engine = _THREAD_STATE.engine
    before = engine.evaluations
    out = getattr(engine, _THREAD_STATE.method)(item, **_THREAD_STATE.kwargs)
    return out, engine.evaluations - before


@register_executor("async")
class AsyncExecutor:
    """Asyncio fan-out with the CPU kernels offloaded to a worker pool.

    Built for the service/proxy path: the items are dispatched from an
    asyncio event loop onto a pool — ``pool="thread"`` (default; each
    worker thread gets a pickled *clone* of the engine so no mutable
    state is shared) or ``pool="process"`` (the multiprocessing worker
    protocol shared with :class:`ProcessExecutor`).  Results come back
    in submission order and every random draw derives from
    :func:`repro.rng.stable_user_seed`, so published datasets are
    byte-identical to the serial backend; the evaluation counter is
    reconciled from per-task deltas.
    """

    def __init__(self, jobs: Optional[int] = None, pool: str = "thread") -> None:
        if pool not in ("thread", "process"):
            raise ConfigurationError(
                f"async executor pool must be 'thread' or 'process', got {pool!r}"
            )
        self.jobs = jobs
        self.pool = pool

    def map(
        self,
        engine: "ProtectionEngine",
        method: str,
        items: Sequence[Any],
        kwargs: Dict[str, Any],
    ) -> List[Any]:
        import asyncio
        import os

        items = list(items)
        jobs = self.jobs or os.cpu_count() or 1
        jobs = max(1, min(int(jobs), len(items) or 1))
        if jobs == 1 or len(items) <= 1:
            return SerialExecutor().map(engine, method, items, kwargs)
        shipment: Optional[_EngineShipment] = None
        if self.pool == "process":
            from concurrent.futures import ProcessPoolExecutor

            shipment = _EngineShipment(engine, method, kwargs)
            initializer, initargs = shipment.pool_hooks()

            def pool_factory() -> Any:
                return ProcessPoolExecutor(
                    jobs, initializer=initializer, initargs=initargs
                )

            run = _pool_run
        else:
            import pickle

            payload = pickle.dumps(engine)
            from concurrent.futures import ThreadPoolExecutor

            def pool_factory() -> Any:
                return ThreadPoolExecutor(
                    jobs,
                    initializer=_thread_clone_init,
                    initargs=(payload, method, kwargs),
                )

            run = _thread_clone_run

        async def gather() -> List[Tuple[Any, int]]:
            loop = asyncio.get_running_loop()
            with pool_factory() as pool:
                futures = [loop.run_in_executor(pool, run, item) for item in items]
                return await asyncio.gather(*futures)

        try:
            try:
                asyncio.get_running_loop()
            except RuntimeError:
                out = asyncio.run(gather())
            else:
                # Called from inside a live event loop (a server handler):
                # blocking this thread on a nested loop is forbidden, so
                # drive the pool directly — same results, same order.
                with pool_factory() as pool:
                    out = list(pool.map(run, items))
        finally:
            if shipment is not None:
                shipment.close()
        engine.evaluations += sum(delta for _, delta in out)
        return [result for result, _ in out]


def _shard_of(key: str, shards: int) -> int:
    """Deterministic shard assignment (stable across processes and runs).

    Python's builtin ``hash`` is salted per process, so this uses a
    keyed-free blake2b digest instead — the same user always lands on
    the same shard, which is what makes sharded runs reproducible.
    """
    import hashlib

    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


def _partition_items(
    items: Sequence[Any], shards: int
) -> Dict[int, List[Tuple[int, Any]]]:
    """Bucket *items* by ``blake2b(user_id) mod shards``, keeping indices.

    This is the **stable placement** map shared by the ``sharded`` and
    ``remote`` executors: it depends only on item content and the
    logical ``shards`` modulus — never on ``os.cpu_count()``, the worker
    budget, or which hosts serve the shards — so the same user lands on
    the same shard on every machine.  Only non-empty buckets appear.
    """
    buckets: Dict[int, List[Tuple[int, Any]]] = {}
    for idx, item in enumerate(items):
        key = getattr(item, "user_id", None) or f"item-{idx}"
        buckets.setdefault(_shard_of(str(key), shards), []).append((idx, item))
    return buckets


@register_executor("sharded")
class ShardedExecutor:
    """Partition items across per-shard process pools by user hash.

    Campaign-scale corpora are split into ``shards`` deterministic
    partitions (blake2b of the item's ``user_id``).  The logical shard
    count is **placement**, not concurrency: it is never clamped by
    ``os.cpu_count()`` or the worker budget, so the same user lands on
    the same shard on every host (the guarantee remote dispatch builds
    on).  Local concurrency adapts separately — the shard buckets are
    grouped onto at most ``jobs`` :mod:`multiprocessing` pools, so the
    total worker count never exceeds ``jobs`` — which is output-neutral:
    the shard assignment is content-addressed, per-item work is
    independent, and the merge is positional, so published datasets are
    byte-identical to the serial backend regardless of shard count or
    worker budget.
    """

    def __init__(self, jobs: Optional[int] = None, shards: int = 4) -> None:
        if int(shards) < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.jobs = jobs
        self.shards = int(shards)

    def map(
        self,
        engine: "ProtectionEngine",
        method: str,
        items: Sequence[Any],
        kwargs: Dict[str, Any],
    ) -> List[Any]:
        import multiprocessing
        import os

        items = list(items)
        if not items:
            return []
        # Placement first: host-independent, worker-budget-independent.
        buckets = _partition_items(items, self.shards)
        total_jobs = int(self.jobs or os.cpu_count() or 1)
        if total_jobs == 1 or len(items) == 1 or len(buckets) == 1:
            # One worker (or one bucket) degenerates to serial execution;
            # the logical placement above is unchanged, so this is
            # output-neutral and spawns no pools.
            return SerialExecutor().map(engine, method, items, kwargs)
        # Concurrency second: group logical shards onto at most
        # ``total_jobs`` pools (ring order), one process per pool minimum.
        n_pools = min(total_jobs, len(buckets))
        groups: List[List[Tuple[int, Any]]] = [[] for _ in range(n_pools)]
        for j, shard in enumerate(sorted(buckets)):
            groups[j % n_pools].extend(buckets[shard])
        per_pool = max(1, total_jobs // n_pools)
        results: List[Any] = [None] * len(items)
        pools: List[Any] = []
        pending: List[Tuple[List[Tuple[int, Any]], Any]] = []
        # One shipment for the whole batch: every shard pool attaches
        # the same shared-memory segment instead of each re-pickling the
        # fitted engine through its initargs.
        shipment = _EngineShipment(engine, method, kwargs)
        try:
            initializer, initargs = shipment.pool_hooks()
            for group in groups:
                pool = multiprocessing.Pool(
                    min(per_pool, len(group)),
                    initializer=initializer,
                    initargs=initargs,
                )
                pools.append(pool)
                pending.append(
                    (group, pool.map_async(_pool_run, [item for _, item in group]))
                )
            for group, handle in pending:
                out = handle.get()
                for (idx, _), (result, delta) in zip(group, out):
                    results[idx] = result
                    engine.evaluations += delta
        finally:
            for pool in pools:
                pool.close()
            for pool in pools:
                pool.join()
            shipment.close()
        return results


@dataclass(frozen=True)
class RemoteProtectedPiece:
    """One published sub-trace reconstructed from the wire.

    The raw original never leaves the serving host (the protocol's
    privacy invariant), so unlike :class:`ProtectedPiece` there is no
    ``original`` trace here — only its record count, which is all the
    dataset-level readouts (data loss, record-weighted distortion) need.
    """

    pseudonym: str
    original_user: str
    #: The published, obfuscated sub-trace (``user_id == pseudonym``).
    published: Trace
    mechanism: str
    distortion_m: float
    #: Record count of the raw sub-trace this piece protects.
    original_records: int


@dataclass
class RemoteMoodResult(MoodResult):
    """A :class:`MoodResult` rebuilt from a wire ``ProtectResponse``.

    Published pieces are exact (the codec round-trips floats); erased
    raw sub-traces never crossed the wire, so erasure is represented by
    its record count alone.  Every aggregate readout
    (``data_loss``, ``fully_protected``, ``mean_distortion_m``,
    ``published_dataset``) matches the local result bit-for-bit.
    """

    #: Wire-reported erased record count (the traces stayed remote).
    remote_erased_records: int = 0

    @property
    def erased_records(self) -> int:
        return self.remote_erased_records

    @property
    def published_records(self) -> int:
        return sum(p.original_records for p in self.pieces)

    def mean_distortion_m(self) -> float:
        total = self.published_records
        if total == 0:
            return float("inf")
        return (
            sum(p.distortion_m * p.original_records for p in self.pieces) / total
        )


@register_executor("remote")
class RemoteExecutor:
    """Dispatch shards to remote ``repro serve`` instances over the wire.

    The multi-host sibling of :class:`ShardedExecutor`: items are
    partitioned with the same blake2b user-hash (stable placement — the
    same user lands on the same logical shard on every machine), but
    each shard is served by a *remote* protection service instead of a
    local process pool.  Shard ``s`` goes to endpoint ``s % len(endpoints)``
    as a batch of ``protect_request`` frames pipelined on one connection
    (``jobs`` caps the per-endpoint in-flight requests); an endpoint
    that fails mid-batch is retired and its requests fail over to the
    survivors; the merge is positional.  Because every draw derives from
    the trace content and the codec round-trips floats exactly, the
    published dataset is byte-identical to the serial backend — provided
    each endpoint serves an equivalently-configured, equivalently-fitted
    engine and a **fresh service session** (pseudonym counters are
    session-scoped), and no two items share a ``user_id``.

    Declaratively::

        {"name": "remote", "endpoints": ["10.0.0.1:7464", "10.0.0.2:7464"],
         "shards": 8, "retry_budget": 3, "backoff": {"base": 0.05, "max": 2.0},
         "auth_key_file": "/etc/mood/cluster.key"}

    With ``coordinator`` set (``"host:port"`` of any endpoint acting as
    the membership registry), dispatch switches to the **elastic**
    work-stealing client (:mod:`repro.cluster`): the endpoint pool may
    grow and shrink mid-batch as workers ``cluster_join``/``leave``,
    ``endpoints`` become optional seeds, and ``poll_s`` /
    ``join_grace_s`` tune the membership subscription.  Placement and
    published bytes are unchanged — see docs/CLUSTER.md.

    Endpoints accept ``"host:port"``, ``"unix:/path"``, or
    ``{"host": ..., "port": ...}`` dicts.  ``retry_budget`` and
    ``backoff`` tune endpoint rehabilitation (a flapping endpoint sits
    out an exponential-backoff probation and rejoins; one that exhausts
    the budget is retired — see
    :class:`repro.service.rpc.RemoteClusterClient`); ``backoff`` is
    either a number (the base delay in seconds) or a ``{"base", "factor",
    "max"}`` dict.  ``auth_key_file`` (a path; or ``auth_key``, the
    literal secret) authenticates every connection with the endpoints'
    shared-secret handshake.  Only ``protect`` and ``protect_daily``
    travel the wire (the protocol's ``ProtectRequest`` vocabulary);
    other batch methods must run on a local backend.  The engine's
    ``evaluations`` counter is **not** reconciled — the evaluations
    happen on the serving hosts, which own their counters.
    """

    def __init__(
        self,
        endpoints: Sequence[Any] = (),
        shards: Optional[int] = None,
        jobs: Optional[int] = None,
        timeout: float = 120.0,
        retry_budget: int = 3,
        backoff: Union[None, float, int, Dict[str, Any]] = None,
        auth_key: Optional[str] = None,
        auth_key_file: Optional[str] = None,
        coordinator: Optional[str] = None,
        poll_s: float = 0.5,
        join_grace_s: float = 30.0,
        wire: Optional[Sequence[int]] = None,
    ) -> None:
        if not endpoints and coordinator is None:
            raise ConfigurationError(
                "the remote executor needs at least one endpoint "
                "(or a 'coordinator' to discover members from)"
            )
        self.endpoints = list(endpoints)
        self.coordinator = coordinator
        if float(poll_s) <= 0:
            raise ConfigurationError(f"poll_s must be positive, got {poll_s}")
        self.poll_s = float(poll_s)
        if float(join_grace_s) <= 0:
            raise ConfigurationError(
                f"join_grace_s must be positive, got {join_grace_s}"
            )
        self.join_grace_s = float(join_grace_s)
        if shards is None:
            shards = max(1, len(self.endpoints))
        if int(shards) < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.shards = int(shards)
        if jobs is not None and int(jobs) < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.timeout = float(timeout)
        self.retry_budget = int(retry_budget)
        if self.retry_budget < 0:
            raise ConfigurationError(
                f"retry_budget must be >= 0, got {retry_budget}"
            )
        self.backoff = self._parse_backoff(backoff)
        if self.backoff["base"] <= 0 or self.backoff["max"] <= 0:
            raise ConfigurationError(
                f"backoff times must be positive, got {self.backoff}"
            )
        if self.backoff["factor"] < 1.0:
            raise ConfigurationError(
                f"backoff factor must be >= 1, got {self.backoff['factor']}"
            )
        if auth_key is not None and auth_key_file is not None:
            raise ConfigurationError(
                "give auth_key or auth_key_file, not both"
            )
        self.auth_key = auth_key
        self.auth_key_file = auth_key_file
        # Wire versions offered per connection (validated by the
        # clients); ``"wire": [1]`` pins a batch to v1 JSON framing.
        self.wire = None if wire is None else tuple(int(v) for v in wire)

    @staticmethod
    def _parse_backoff(spec: Any) -> Dict[str, float]:
        """``backoff`` spec → RemoteClusterClient kwargs (validated there)."""
        out = {"base": 0.05, "factor": 2.0, "max": 2.0}
        if spec is None:
            return out
        if isinstance(spec, (int, float)) and not isinstance(spec, bool):
            out["base"] = float(spec)
            return out
        if isinstance(spec, dict):
            unknown = sorted(set(spec) - set(out))
            if unknown:
                raise ConfigurationError(
                    f"unknown backoff keys {unknown}; known: {sorted(out)}"
                )
            for key in out:
                if key in spec:
                    out[key] = float(spec[key])
            return out
        raise ConfigurationError(
            f"backoff must be a number or a base/factor/max dict, got {spec!r}"
        )

    def _resolve_auth_key(self) -> Optional[bytes]:
        # Resolved at dispatch time, not construction: the key file only
        # needs to exist where the batch actually runs.
        from repro.service.api import resolve_auth_key

        return resolve_auth_key(self.auth_key, self.auth_key_file)

    #: Per-endpoint in-flight default when ``jobs`` is unset.
    DEFAULT_INFLIGHT = 4

    def map(
        self,
        engine: "ProtectionEngine",
        method: str,
        items: Sequence[Any],
        kwargs: Dict[str, Any],
    ) -> List[Any]:
        # Engine and service layers would import-cycle at module scope
        # (service.api imports this module), so resolve lazily.
        from repro.errors import ProtocolError, ServiceError
        from repro.service.api import ErrorEnvelope, ProtectRequest, ProtectResponse
        from repro.service.rpc import RemoteClusterClient

        if method == "protect":
            daily, chunk_s = False, DEFAULT_CHUNK_S
        elif method == "protect_daily":
            daily = True
            chunk_s = float(kwargs.get("chunk_s", DEFAULT_CHUNK_S))
        else:
            raise ConfigurationError(
                f"the remote executor only serves 'protect' and 'protect_daily' "
                f"(the wire protocol's protect_request vocabulary); run "
                f"{method!r} on a local backend instead"
            )
        items = list(items)
        if not items:
            return []
        buckets = _partition_items(items, self.shards)
        shard_of_index: Dict[int, int] = {}
        for shard, bucket in buckets.items():
            for idx, _ in bucket:
                shard_of_index[idx] = shard
        requests = [
            (
                shard_of_index[idx],
                ProtectRequest(trace=item, daily=daily, chunk_s=chunk_s),
            )
            for idx, item in enumerate(items)
        ]
        inflight = int(self.jobs or self.DEFAULT_INFLIGHT)

        auth_key = self._resolve_auth_key()

        async def dispatch() -> List[Any]:
            common = dict(
                timeout=self.timeout,
                max_inflight=inflight,
                retry_budget=self.retry_budget,
                backoff_base=self.backoff["base"],
                backoff_factor=self.backoff["factor"],
                backoff_max=self.backoff["max"],
                auth_key=auth_key,
            )
            if self.wire is not None:
                common["wire_versions"] = self.wire
            if self.coordinator is not None:
                # Elastic mode: subscribe to the coordinator's registry
                # so endpoints can join/leave while this batch runs
                # (work-stealing dispatch, same byte-identity rules —
                # see docs/CLUSTER.md).
                from repro.cluster import (
                    ElasticClusterClient,
                    MembershipSubscription,
                )

                cluster: Any = ElasticClusterClient(
                    self.endpoints,
                    membership=MembershipSubscription(
                        self.coordinator,
                        poll_s=self.poll_s,
                        timeout=self.timeout,
                        auth_key=auth_key,
                    ),
                    join_grace_s=self.join_grace_s,
                    **common,
                )
            else:
                cluster = RemoteClusterClient(self.endpoints, **common)
            try:
                return await cluster.run(requests)
            finally:
                await cluster.close()

        replies = _run_coroutine(dispatch())
        results: List[Any] = []
        for item, reply in zip(items, replies):
            if isinstance(reply, ErrorEnvelope):
                raise ServiceError(reply.code, reply.message)
            if not isinstance(reply, ProtectResponse):
                raise ProtocolError(
                    f"expected protect_response, got {type(reply).__name__}"
                )
            results.append(self._to_result(reply))
        return results

    @staticmethod
    def _to_result(reply: Any) -> RemoteMoodResult:
        result = RemoteMoodResult(
            user_id=reply.user_id,
            original_records=reply.original_records,
            remote_erased_records=reply.erased_records,
        )
        result.pieces = [
            RemoteProtectedPiece(
                pseudonym=p.pseudonym,
                original_user=reply.user_id,
                published=p.trace,
                mechanism=p.mechanism,
                distortion_m=p.distortion_m,
                original_records=p.records_protected,
            )
            for p in reply.pieces
        ]
        return result


def _run_coroutine(coro: Any) -> Any:
    """Drive *coro* to completion from synchronous code.

    Uses :func:`asyncio.run` directly; when already inside a running
    event loop (a server handler protecting a dataset), the coroutine is
    run on a private loop in a helper thread — blocking a live loop on a
    nested one is forbidden.
    """
    import asyncio

    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(coro)
    box: Dict[str, Any] = {}

    def runner() -> None:
        try:
            box["result"] = asyncio.run(coro)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box["error"] = exc

    thread = threading.Thread(target=runner, name="mood-remote-dispatch")
    thread.start()
    thread.join()
    if "error" in box:
        raise box["error"]
    return box["result"]


# ---------------------------------------------------------------------------
# Dataset-level reports
# ---------------------------------------------------------------------------


@dataclass
class LppmEvaluation:
    """Everything the figures need about one (dataset, LPPM) pair."""

    dataset_name: str
    lppm_name: str
    #: ``guesses[user][attack_name]`` — who each attack thinks the user is.
    guesses: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: Obfuscated trace per user.
    obfuscated: Dict[str, Trace] = field(default_factory=dict)
    #: STD per user, metres.
    distortions: Dict[str, float] = field(default_factory=dict)

    def non_protected(self, attack_names: Optional[Sequence[str]] = None) -> Set[str]:
        """Users re-identified by ≥1 of the given attacks (default: all)."""
        out: Set[str] = set()
        for user, per_attack in self.guesses.items():
            names = attack_names if attack_names is not None else list(per_attack)
            for a in names:
                guess = per_attack.get(a, NO_GUESS)
                if guess != NO_GUESS and guess == user:
                    out.add(user)
                    break
        return out

    def protected(self, attack_names: Optional[Sequence[str]] = None) -> Set[str]:
        """Complement of :meth:`non_protected` over evaluated users."""
        return set(self.guesses) - self.non_protected(attack_names)


@dataclass
class HybridEvaluation:
    """Per-user hybrid outcomes plus dataset-level aggregates."""

    dataset_name: str
    results: Dict[str, HybridResult] = field(default_factory=dict)

    def non_protected(self) -> Set[str]:
        return {u for u, r in self.results.items() if not r.protected}

    def data_loss(self, dataset: MobilityDataset) -> float:
        return data_loss(dataset, self.non_protected())

    def distortions(self) -> Dict[str, float]:
        """STD of the protected users only."""
        return {u: r.distortion_m for u, r in self.results.items() if r.protected}


@dataclass
class MoodEvaluation:
    """Per-user MooD outcomes plus dataset-level aggregates."""

    dataset_name: str
    results: Dict[str, MoodResult] = field(default_factory=dict)

    def non_protected(self) -> Set[str]:
        """Users with at least one erased record (not fully curable)."""
        return {u for u, r in self.results.items() if not r.fully_protected}

    def composition_survivors(self) -> Set[str]:
        """Users whose *whole* trace resisted single and multi-LPPM search.

        These are the users handed to the fine-grained stage — the bars
        of Figures 6/7 count them.
        """
        return {u for u, r in self.results.items() if not r.whole_trace_protected}

    def data_loss(self) -> float:
        """Record-level loss over the dataset (Eq. 7, sub-trace aware)."""
        total = sum(r.original_records for r in self.results.values())
        if total == 0:
            return 0.0
        lost = sum(r.erased_records for r in self.results.values())
        return lost / total

    def distortions(self) -> Dict[str, float]:
        """Record-weighted mean STD per user with published data."""
        return {
            u: r.mean_distortion_m()
            for u, r in self.results.items()
            if r.published_records > 0
        }

    def published_dataset(self, name: Optional[str] = None) -> MobilityDataset:
        """Assemble the published (pseudonymised, protected) dataset."""
        out = MobilityDataset(name or f"{self.dataset_name}-published")
        for result in self.results.values():
            for piece in result.pieces:
                out.add(piece.published)
        return out


@dataclass
class ProtectionReport(MoodEvaluation):
    """Outcome of :meth:`ProtectionEngine.protect_dataset`."""

    #: Wall-clock seconds spent protecting the dataset.
    wall_time_s: float = 0.0
    #: (mechanism, trace) evaluations spent — the §6 cost counter.
    evaluations: int = 0

    @property
    def users_per_second(self) -> float:
        if self.wall_time_s <= 0:
            return float("inf")
        return len(self.results) / self.wall_time_s


@dataclass
class EvaluationReport:
    """Unified result of :meth:`ProtectionEngine.evaluate`.

    ``result`` holds the strategy-specific payload
    (:class:`LppmEvaluation`, :class:`HybridEvaluation`, or
    :class:`MoodEvaluation`); the methods below give every strategy the
    same read-out surface.
    """

    strategy: str
    dataset_name: str
    result: Union[LppmEvaluation, HybridEvaluation, MoodEvaluation]
    wall_time_s: float = 0.0

    def users(self) -> Set[str]:
        if isinstance(self.result, LppmEvaluation):
            return set(self.result.guesses)
        return set(self.result.results)

    def non_protected(self, attack_names: Optional[Sequence[str]] = None) -> Set[str]:
        if isinstance(self.result, LppmEvaluation):
            return self.result.non_protected(attack_names)
        if attack_names is not None:
            raise ConfigurationError(
                "per-attack readouts only exist for the 'lppm' strategy — the "
                f"{self.strategy!r} protocol records a single verdict per user; "
                "run evaluate() with the attack subset instead"
            )
        return self.result.non_protected()

    def protected(self, attack_names: Optional[Sequence[str]] = None) -> Set[str]:
        return self.users() - self.non_protected(attack_names)

    def data_loss(self, dataset: Optional[MobilityDataset] = None) -> float:
        """Record-level loss (Eq. 7).

        The MooD strategy computes it from its own per-user records; the
        ``lppm`` and ``hybrid`` strategies are all-or-nothing per user and
        need the *raw* dataset for record counts.
        """
        if isinstance(self.result, MoodEvaluation):
            return self.result.data_loss()
        if dataset is None:
            raise ConfigurationError(
                f"data_loss for the {self.strategy!r} strategy needs the raw dataset"
            )
        return data_loss(dataset, self.non_protected())

    def distortions(self) -> Dict[str, float]:
        if isinstance(self.result, LppmEvaluation):
            return dict(self.result.distortions)
        return self.result.distortions()

    def published_dataset(self, name: Optional[str] = None) -> MobilityDataset:
        if not isinstance(self.result, MoodEvaluation):
            raise ConfigurationError(
                f"published_dataset is only defined for the 'mood' strategy, "
                f"not {self.strategy!r}"
            )
        return self.result.published_dataset(name)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class ProtectionEngine:
    """User-centric fine-grained multi-LPPM protection (Algorithm 1).

    Parameters
    ----------
    lppms:
        The base mechanism set ``L`` (already fitted where applicable).
    attacks:
        The fitted re-identification attack suite ``A``.  The engine owns
        the ground truth, so it can evaluate Eq. 5/6 directly.
    delta_s:
        Recursion floor ``δ``: sub-traces shorter than this are erased
        rather than split further.
    max_composition_length:
        Cap on composition chain length (``None`` = all ``n`` stages).
    seed:
        Base seed; every (user, mechanism, sub-trace) application derives
        a stable child seed, so results are order-independent — which is
        what makes the process executor bit-exact.
    split_policy:
        Fine-grained splitting rule: a registered name (``"half"``,
        ``"gap"``, ``"inter-poi"``, or any plugin registered under the
        ``split_policy`` kind) or a callable ``trace -> (left, right)``.
    search_strategy:
        Candidate-ordering/early-stopping strategy (§6): ``None`` for the
        paper's exhaustive lowest-distortion search, a registered name or
        spec (``"greedy"``, ``{"name": "greedy", "alpha": 2.0}``), or a
        :class:`~repro.core.search.CompositionSearchStrategy` instance.
    executor:
        Batch backend for :meth:`protect_dataset`/:meth:`evaluate`: a
        registered name or spec (``"serial"``, ``"process"``,
        ``"async"``, ``{"name": "sharded", "shards": 8}``) or an
        executor instance.  All built-in backends publish byte-identical
        datasets.
    jobs:
        Worker count for parallel executors (``None`` = all cores).
    """

    def __init__(
        self,
        lppms: Sequence[LPPM],
        attacks: "Sequence[Attack]",
        delta_s: float = DEFAULT_DELTA_S,
        max_composition_length: Optional[int] = None,
        seed: int = 0,
        split_policy: Union[str, Callable[[Trace], Tuple[Trace, Trace]]] = "half",
        search_strategy: Union[None, str, Dict[str, Any], CompositionSearchStrategy] = None,
        executor: Union[str, Dict[str, Any], Any] = "serial",
        jobs: Optional[int] = 1,
    ) -> None:
        if not lppms:
            raise ConfigurationError("the protection engine needs at least one LPPM")
        if not attacks:
            raise ConfigurationError("the protection engine needs at least one attack")
        if delta_s <= 0:
            raise ConfigurationError(f"delta_s must be positive, got {delta_s}")
        if jobs is not None and jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.lppms = list(lppms)
        self.attacks = list(attacks)
        self.delta_s = float(delta_s)
        self.max_composition_length = max_composition_length
        self.seed = int(seed)
        self.split_policy = split_policy
        self._split_fn = (
            split_policy if callable(split_policy) else build("split_policy", split_policy)
        )
        if search_strategy is None or isinstance(
            search_strategy, CompositionSearchStrategy
        ):
            self.search_strategy: Optional[CompositionSearchStrategy] = search_strategy
        else:
            self.search_strategy = build("search_strategy", search_strategy)
        self.executor = executor
        self.jobs = jobs
        #: Number of (mechanism, trace) evaluations performed — the §6
        #: brute-force cost counter the search strategies aim to reduce.
        self.evaluations = 0
        #: Shared per-trace feature cache (trace fingerprint → heatmap /
        #: POI visits / MMC), attached to every attack that supports it.
        #: The split recursion and the daily-chunk mode revisit identical
        #: sub-traces — and every candidate output is deterministic in
        #: (user, mechanism, sub-trace) — so features are built once and
        #: shared across attacks instead of recomputed per evaluation.
        #: Cache hits return the exact object a miss would build, so
        #: results (and published datasets) are unchanged.
        # Adopt a cache already attached to the attacks (an explicit
        # caller attachment, or wiring by a previous engine sharing the
        # same fitted suite — features are content-keyed, so sharing is
        # safe and avoids re-featurising across engines); otherwise
        # create a fresh one.  Either way ``self.feature_cache`` is the
        # cache the attacks actually use, so its stats are meaningful.
        adopted = next(
            (
                cache
                for cache in (
                    getattr(a, "feature_cache", None) for a in self.attacks
                )
                if cache is not None
            ),
            None,
        )
        # NB: an empty FeatureCache is falsy (it has __len__), so this
        # must be an identity check, not an ``or``.
        self.feature_cache = FeatureCache() if adopted is None else adopted
        for attack in self.attacks:
            use = getattr(attack, "use_feature_cache", None)
            if use is not None and getattr(attack, "feature_cache", None) is None:
                use(self.feature_cache)
        self.singles: List[ComposedLPPM] = enumerate_compositions(
            self.lppms, min_length=1, max_length=1
        )
        self.chains: List[ComposedLPPM] = enumerate_compositions(
            self.lppms, min_length=2, max_length=max_composition_length
        )

    # -- declarative construction ---------------------------------------

    @classmethod
    def from_config(cls, config: "ProtectionConfig") -> "ProtectionEngine":
        """Build every component of *config* through the registries.

        The returned engine is **unfitted**: call :meth:`fit` with the
        attacker's background knowledge before protecting.

        A ``remote`` executor spec that carries no auth key of its own
        inherits ``config.service``'s ``auth_key_file``/``auth_key``, so
        one config block keys both ``repro serve`` and the cluster
        clients that dial it.
        """
        executor = config.executor
        service = getattr(config, "service", None)
        if (
            service
            and isinstance(executor, dict)
            and executor.get("name") == "remote"
            and "auth_key" not in executor
            and "auth_key_file" not in executor
        ):
            executor = dict(executor)
            for key in ("auth_key_file", "auth_key"):
                if key in service:
                    executor[key] = service[key]
        return cls(
            lppms=[build("lppm", spec) for spec in config.lppms],
            attacks=[build("attack", spec) for spec in config.attacks],
            delta_s=config.delta_s,
            max_composition_length=config.max_composition_length,
            seed=config.seed,
            split_policy=config.split_policy,
            search_strategy=config.search_strategy,
            executor=executor,
            jobs=config.jobs,
        )

    def fit(self, background: MobilityDataset) -> "ProtectionEngine":
        """Fit every attack and fittable LPPM on the background knowledge."""
        for component in list(self.attacks) + list(self.lppms):
            fit = getattr(component, "fit", None)
            if fit is None:
                continue
            fitted = getattr(component, "is_fitted", False)
            if not fitted:
                fit(background)
        return self

    def refit(self, delta: MobilityDataset) -> List[str]:
        """Fold a background *delta* into every attack that supports it.

        Replace semantics (see :meth:`repro.attacks.base.Attack.refit`):
        *delta* carries the complete, updated background trace per user.
        Attacks without incremental refit keep their existing profiles —
        an online deployment prefers a slightly stale profile over a
        full re-fit stall on the ingest path.  Returns the names of the
        attacks that were refitted.

        Refitting changes attack verdicts, hence published bytes: the
        streaming path only calls this when ``stream.refit`` is enabled,
        never in the byte-identity-pinned default mode.
        """
        refitted: List[str] = []
        for attack in self.attacks:
            if getattr(attack, "supports_refit", False) and attack.is_fitted:
                attack.refit(delta)
                refitted.append(attack.name)
        return refitted

    # -- Algorithm 1 -----------------------------------------------------

    def protect(self, trace: Trace) -> MoodResult:
        """Protect *trace*; returns published pieces and erased leftovers."""
        result = MoodResult(user_id=trace.user_id, original_records=len(trace))
        self._protect_rec(trace, result)
        return self.finalize(result)

    def protect_daily(self, trace: Trace, chunk_s: float = DEFAULT_CHUNK_S) -> MoodResult:
        """Crowdsensing variant (§4.5): chunk into *chunk_s* windows first.

        Each chunk is protected independently (composition search, then
        recursive fine-grained splitting), modelling users who upload
        their data daily.
        """
        result = MoodResult(user_id=trace.user_id, original_records=len(trace))
        for chunk in split_fixed_time(trace, chunk_s):
            self._protect_rec(chunk, result)
        return self.finalize(result)

    def search_whole_trace(self, trace: Trace) -> Optional[ProtectedPiece]:
        """Lines 4-26: single-LPPM search, then multi-LPPM compositions.

        Returns the lowest-distortion protecting piece (pseudonym not yet
        renewed — see :meth:`finalize`), or ``None`` when no single
        mechanism or chain defeats every attack.
        """
        winner = self._best_protecting(trace, self.singles)
        if winner is None:
            winner = self._best_protecting(trace, self.chains)
        if winner is None:
            return None
        published, mechanism, distortion = winner
        return ProtectedPiece(
            pseudonym=trace.user_id,  # renewed by finalize()
            original_user=trace.user_id,
            original=trace,
            published=published,
            mechanism=mechanism,
            distortion_m=distortion,
        )

    def finalize(self, result: MoodResult) -> MoodResult:
        """Line 34: renew pseudonyms on *result*'s pieces (in place)."""
        _renew_ids(result)
        return result

    # -- dataset-level batch API -----------------------------------------

    def protect_dataset(
        self,
        dataset: MobilityDataset,
        daily: bool = False,
        chunk_s: float = DEFAULT_CHUNK_S,
    ) -> ProtectionReport:
        """Protect every user of *dataset* on the configured executor.

        With ``daily=True`` each trace is pre-chunked into *chunk_s*
        windows (the §4.5 crowdsensing mode) before the cascade.
        """
        t0 = time.perf_counter()
        ev0 = self.evaluations
        traces = dataset.traces()
        kwargs = {"chunk_s": chunk_s} if daily else {}
        method = "protect_daily" if daily else "protect"
        results = self._map(method, traces, kwargs)
        return ProtectionReport(
            dataset_name=dataset.name,
            results={t.user_id: r for t, r in zip(traces, results)},
            wall_time_s=time.perf_counter() - t0,
            evaluations=self.evaluations - ev0,
        )

    def evaluate(
        self,
        strategy: str,
        test: MobilityDataset,
        lppm: Union[None, str, LPPM] = None,
        hybrid: Optional[HybridLPPM] = None,
        composition_only: bool = False,
        chunk_s: float = DEFAULT_CHUNK_S,
    ) -> EvaluationReport:
        """Evaluate one protection *strategy* over every user of *test*.

        ``strategy`` selects the protocol:

        * ``"lppm"`` — apply one mechanism (*lppm*: an instance, a name
          of one of the engine's LPPMs, or a registry spec; default: the
          engine's first LPPM) to every trace and record the verdict of
          **every** attack (the legacy ``evaluate_lppm``);
        * ``"hybrid"`` — the user-centric single-LPPM baseline [22]
          (*hybrid* overrides the mechanism order; the legacy
          ``evaluate_hybrid``);
        * ``"mood"`` — the full cascade; ``composition_only=True``
          disables the fine-grained recursion (δ = ∞, the Figures 6/7
          readout), otherwise survivors run the §4.5 daily-chunk mode
          (the legacy ``evaluate_mood``).
        """
        t0 = time.perf_counter()
        traces = test.traces()
        if strategy == "lppm":
            resolved = self._resolve_lppm(lppm)
            rows = self._map("_evaluate_lppm_one", traces, {"lppm": resolved})
            result: Union[LppmEvaluation, HybridEvaluation, MoodEvaluation]
            result = LppmEvaluation(dataset_name=test.name, lppm_name=resolved.name)
            for user, per_attack, obfuscated, distortion in rows:
                result.guesses[user] = per_attack
                result.obfuscated[user] = obfuscated
                result.distortions[user] = distortion
        elif strategy == "hybrid":
            if hybrid is None:
                hybrid = HybridLPPM(self.lppms, self.attacks, seed=self.seed)
            rows = self._map("_evaluate_hybrid_one", traces, {"hybrid": hybrid})
            result = HybridEvaluation(
                dataset_name=test.name,
                results={t.user_id: r for t, r in zip(traces, rows)},
            )
        elif strategy == "mood":
            rows = self._map(
                "_evaluate_mood_one",
                traces,
                {"composition_only": composition_only, "chunk_s": chunk_s},
            )
            result = MoodEvaluation(
                dataset_name=test.name,
                results={t.user_id: r for t, r in zip(traces, rows)},
            )
        else:
            raise ConfigurationError(
                f"unknown evaluation strategy {strategy!r}; "
                "choose from ('lppm', 'hybrid', 'mood')"
            )
        return EvaluationReport(
            strategy=strategy,
            dataset_name=test.name,
            result=result,
            wall_time_s=time.perf_counter() - t0,
        )

    # -- per-user work units (referenced by name for the executors) ------

    def _evaluate_lppm_one(
        self, trace: Trace, lppm: LPPM
    ) -> Tuple[str, Dict[str, str], Trace, float]:
        rng = make_rng(stable_user_seed(self.seed, f"{trace.user_id}|{lppm.name}"))
        obfuscated = lppm.apply(trace, rng)
        if len(obfuscated) > 0:
            distortion = spatial_temporal_distortion(trace, obfuscated)
        else:
            distortion = float("inf")
        per_attack: Dict[str, str] = {}
        for attack in self.attacks:
            per_attack[attack.name] = (
                attack.reidentify(obfuscated) if len(obfuscated) > 0 else NO_GUESS
            )
        return trace.user_id, per_attack, obfuscated, distortion

    def _evaluate_hybrid_one(self, trace: Trace, hybrid: HybridLPPM) -> HybridResult:
        return hybrid.protect(trace)

    def _evaluate_mood_one(
        self, trace: Trace, composition_only: bool = False, chunk_s: float = DEFAULT_CHUNK_S
    ) -> MoodResult:
        whole = self.search_whole_trace(trace)
        if whole is not None:
            result = MoodResult(user_id=trace.user_id, original_records=len(trace))
            result.pieces.append(whole)
            return self.finalize(result)
        if composition_only:
            result = MoodResult(user_id=trace.user_id, original_records=len(trace))
            result.erased.append(trace)
            return result
        return self.protect_daily(trace, chunk_s=chunk_s)

    # -- internals ------------------------------------------------------------

    def _resolve_lppm(self, lppm: Union[None, str, Dict[str, Any], LPPM]) -> LPPM:
        """An LPPM instance from *lppm*.

        A string must name one of the engine's own mechanisms (display
        name like ``"Geo-I"`` or registry slug like ``"geoi"``) — those
        are fitted and carry the configured parameters.  Building a
        *fresh* mechanism instead requires an explicit dict spec.
        """
        if lppm is None:
            return self.lppms[0]
        if isinstance(lppm, LPPM):
            return lppm
        if isinstance(lppm, str):
            for candidate in self.lppms:
                slug = getattr(type(candidate), "registry_name", None)
                if lppm in (candidate.name, slug):
                    return candidate
            known = sorted(l.name for l in self.lppms)
            raise ConfigurationError(
                f"{lppm!r} is not one of this engine's LPPMs {known}; "
                "pass a spec dict to build a fresh mechanism"
            )
        return build("lppm", lppm)

    def _map(
        self, method: str, items: Sequence[Any], kwargs: Dict[str, Any]
    ) -> List[Any]:
        """Run ``getattr(self, method)(item, **kwargs)`` on the executor."""
        executor = self.executor
        if isinstance(executor, (str, dict)):
            spec = normalize_spec(executor)
            spec.setdefault("jobs", self.jobs)
            executor = build("executor", spec)
        if getattr(self.search_strategy, "stateful", False) and not isinstance(
            executor, SerialExecutor
        ):
            warnings.warn(
                f"search strategy {type(self.search_strategy).__name__} learns "
                "across users; falling back to the serial executor so its "
                "statistics stay coherent",
                RuntimeWarning,
                stacklevel=3,
            )
            executor = SerialExecutor()
        return executor.map(self, method, list(items), dict(kwargs))

    def _protect_rec(self, trace: Trace, result: MoodResult) -> None:
        """Recursive body of Algorithm 1 (lines 4-37)."""
        if len(trace) == 0:
            return
        piece = self.search_whole_trace(trace)
        if piece is not None:
            result.pieces.append(piece)
            return
        if trace.duration_s() >= self.delta_s and len(trace) >= 2:
            left, right = self._split(trace)
            if len(left) == 0 or len(right) == 0:
                result.erased.append(trace)
                return
            self._protect_rec(left, result)
            self._protect_rec(right, result)
        else:
            result.erased.append(trace)

    def _split(self, trace: Trace) -> Tuple[Trace, Trace]:
        """Cut *trace* in two according to the configured split policy."""
        return self._split_fn(trace)

    def _best_protecting(
        self, trace: Trace, mechanisms: Sequence[ComposedLPPM]
    ) -> Optional[Tuple[Trace, str, float]]:
        """Lowest-STD output among the mechanisms that defeat all attacks.

        With a :attr:`search_strategy`, candidates are tried in the
        strategy's order; a strategy with ``stop_at_first_success``
        returns the first protecting output (trading utility for fewer
        attack evaluations, §6).
        """
        ordered = list(mechanisms)
        strategy = self.search_strategy
        if strategy is not None:
            by_name = {m.name: m for m in mechanisms}
            ordered = [by_name[n] for n in strategy.order(list(by_name))]
        best: Optional[Tuple[Trace, str, float]] = None
        for mech in ordered:
            rng = make_rng(
                stable_user_seed(
                    self.seed,
                    f"{trace.user_id}|{mech.name}|{trace.start_time():.0f}|{len(trace)}",
                )
            )
            candidate = mech.apply(trace, rng)
            if len(candidate) == 0:
                continue
            self.evaluations += 1
            protected = is_protected(candidate, trace.user_id, self.attacks)
            if strategy is not None:
                strategy.record_outcome(mech.name, protected)
            if not protected:
                continue
            distortion = spatial_temporal_distortion(trace, candidate)
            if best is None or distortion < best[2]:
                best = (candidate, mech.name, distortion)
            if strategy is not None and strategy.stop_at_first_success:
                break
        return best

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(lppms={[l.name for l in self.lppms]}, "
            f"attacks={[a.name for a in self.attacks]}, delta_s={self.delta_s}, "
            f"executor={self.executor!r}, jobs={self.jobs})"
        )
