"""Per-trace feature cache for the composition-search hot loop.

MooD's cascade evaluates the same (sub-)traces against multiple attacks,
and the daily-chunk recursion can revisit a trace it already searched:
every candidate LPPM output is deterministic in ``(user, mechanism,
sub-trace)``, so identical sub-traces yield identical candidates — and,
without a cache, identical heatmaps, POI extractions, and MMC models are
rebuilt from scratch every time.

:class:`FeatureCache` is a small LRU keyed by ``(feature kind, trace
fingerprint, parameters)``.  The fingerprint is a content digest of the
trace's record arrays (:attr:`repro.core.trace.Trace.fingerprint`), so
two trace objects with the same records share entries even across
pseudonym renewals.  The cache is attached to every attack by
:class:`repro.core.engine.ProtectionEngine` and consulted through
:meth:`repro.attacks.base.Attack._cached`; attacks built stand-alone
simply run uncached.

Caching never changes results: a hit returns the exact object a miss
would have built (features are treated as immutable by all consumers).
Pickling a cache — e.g. when the process executor ships the engine to
its workers — transfers the configuration but drops the entries, so
workers start cold and stay deterministic.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Tuple

__all__ = ["FeatureCache"]


class FeatureCache:
    """Bounded LRU cache mapping feature keys to built feature objects."""

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get_or_build(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """The cached value for *key*, building (and storing) it on a miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            value = builder()
            self._entries[key] = value
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
            return value
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus the current entry count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "maxsize": self.maxsize,
        }

    # -- pickling ---------------------------------------------------------
    #
    # The process executor ships the engine (and therefore this cache,
    # shared by every attack) to each worker once.  Entries are a local
    # optimisation, not state: drop them so the pickle stays small and
    # every worker starts cold.

    def __getstate__(self) -> Tuple[int]:
        return (self.maxsize,)

    def __setstate__(self, state: Tuple[int]) -> None:
        self.__init__(maxsize=state[0])

    def __repr__(self) -> str:
        return (
            f"FeatureCache(entries={len(self._entries)}, maxsize={self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
