"""Composition-search strategies (paper §6 future work).

The paper's MooD evaluates the candidate mechanisms *exhaustively* —
every single LPPM, then every multi-LPPM chain, keeping the
lowest-distortion protecting output — and §6 flags this brute force as
the system's cost bottleneck, to be addressed with "new heuristics and
advanced ML techniques".  This module provides that extension point:

* :class:`ExhaustiveSearch` — the paper's behaviour (evaluate all,
  return the lowest-distortion winner);
* :class:`GreedySuccessSearch` — an online bandit-style heuristic that
  orders candidates by their Laplace-smoothed historical success rate
  and stops at the first protecting output.  After a few users, the
  mechanisms that usually work for this corpus are tried first, cutting
  attack evaluations dramatically at a bounded utility cost (the first
  protecting output is not necessarily the least distorting one).

Strategies are stateful across users: :meth:`record_outcome` feeds the
per-mechanism statistics.  The ablation bench compares both strategies
on protection outcome, distortion, and number of candidate evaluations.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence

from repro.registry import register_search_strategy


class CompositionSearchStrategy(abc.ABC):
    """Decides candidate order and whether to stop at the first success."""

    #: When True, MooD returns the first protecting candidate instead of
    #: evaluating every candidate and keeping the least distorting one.
    stop_at_first_success: bool = False

    #: When True, the strategy learns across users (its ordering depends
    #: on previous outcomes), so parallel executors fall back to serial
    #: execution to keep the statistics coherent.
    stateful: bool = False

    @abc.abstractmethod
    def order(self, candidate_names: Sequence[str]) -> List[str]:
        """Return *candidate_names* in the order they should be tried."""

    def record_outcome(self, candidate_name: str, protected: bool) -> None:
        """Feed back whether *candidate_name* protected the trace."""


@register_search_strategy("exhaustive")
class ExhaustiveSearch(CompositionSearchStrategy):
    """The paper's strategy: fixed order, evaluate everything."""

    stop_at_first_success = False

    def order(self, candidate_names: Sequence[str]) -> List[str]:
        return list(candidate_names)


@register_search_strategy("greedy")
class GreedySuccessSearch(CompositionSearchStrategy):
    """Try historically successful mechanisms first, stop when one works.

    The score of a mechanism is its Laplace-smoothed success rate
    ``(successes + α) / (trials + 2α)``; unseen mechanisms start at 0.5,
    so exploration happens through the stable tie-break (original order)
    until evidence accumulates.
    """

    stop_at_first_success = True
    stateful = True

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = float(alpha)
        self._successes: Dict[str, int] = {}
        self._trials: Dict[str, int] = {}

    def success_rate(self, name: str) -> float:
        """Current smoothed success estimate for *name*."""
        trials = self._trials.get(name, 0)
        successes = self._successes.get(name, 0)
        return (successes + self.alpha) / (trials + 2.0 * self.alpha)

    def order(self, candidate_names: Sequence[str]) -> List[str]:
        indexed = list(enumerate(candidate_names))
        indexed.sort(key=lambda pair: (-self.success_rate(pair[1]), pair[0]))
        return [name for _, name in indexed]

    def record_outcome(self, candidate_name: str, protected: bool) -> None:
        self._trials[candidate_name] = self._trials.get(candidate_name, 0) + 1
        if protected:
            self._successes[candidate_name] = (
                self._successes.get(candidate_name, 0) + 1
            )

    def snapshot(self) -> Dict[str, float]:
        """Success rates of every mechanism seen so far (for reports)."""
        names = set(self._trials)
        return {name: self.success_rate(name) for name in sorted(names)}
