"""Core data model and the MooD protection engine."""

from repro.core.composition import (
    ComposedLPPM,
    composition_count,
    enumerate_compositions,
)
from repro.core.dataset import MobilityDataset
from repro.core.engine import (
    DEFAULT_CHUNK_S,
    DEFAULT_DELTA_S,
    EvaluationReport,
    MoodResult,
    ProtectedPiece,
    ProtectionEngine,
    ProtectionReport,
)
from repro.core.mood import Mood
from repro.core.pipeline import (
    HybridEvaluation,
    LppmEvaluation,
    MoodEvaluation,
    evaluate_hybrid,
    evaluate_lppm,
    evaluate_mood,
)
from repro.core.record import Record
from repro.core.search import (
    CompositionSearchStrategy,
    ExhaustiveSearch,
    GreedySuccessSearch,
)
from repro.core.split import (
    most_active_window,
    split_fixed_time,
    split_in_half,
    split_on_gaps,
    train_test_split,
)
from repro.core.trace import Trace, merge_traces

__all__ = [
    "Record",
    "Trace",
    "merge_traces",
    "MobilityDataset",
    "split_in_half",
    "split_fixed_time",
    "split_on_gaps",
    "most_active_window",
    "train_test_split",
    "ComposedLPPM",
    "composition_count",
    "enumerate_compositions",
    "Mood",
    "MoodResult",
    "ProtectedPiece",
    "ProtectionEngine",
    "ProtectionReport",
    "EvaluationReport",
    "DEFAULT_DELTA_S",
    "DEFAULT_CHUNK_S",
    "CompositionSearchStrategy",
    "ExhaustiveSearch",
    "GreedySuccessSearch",
    "LppmEvaluation",
    "HybridEvaluation",
    "MoodEvaluation",
    "evaluate_lppm",
    "evaluate_hybrid",
    "evaluate_mood",
]
