"""Trace and dataset splitting utilities.

Three kinds of splits appear in the paper:

* **train/test split** (§4.2): the 30 most-active days of each dataset,
  first 15 days as the attacker's background knowledge ``H``, last 15 as
  the trace ``T`` the user wants to share;
* **fixed-time chunking** (§3.4/§4.5): cut a trace into 24 h sub-traces
  to model daily crowdsensing uploads;
* **recursive halving** (Algorithm 1, line 28): MooD's fine-grained stage
  splits a trace in half by time and recurses until the duration floor δ.

A gap-based splitter (the paper's future-work suggestion) ships behind
the same API and is exercised by the ablation bench.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.dataset import MobilityDataset
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.registry import register_split_policy

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_HOUR = 3_600.0


@register_split_policy("half")
def split_in_half(trace: Trace) -> Tuple[Trace, Trace]:
    """Split *trace* at the midpoint of its covered time span.

    This is ``Split_in_half`` from Algorithm 1.  Records strictly before
    the temporal midpoint go left, the rest right; with < 2 records the
    right half is empty.
    """
    if len(trace) < 2:
        return (trace, Trace.empty(trace.user_id))
    mid = trace.start_time() + trace.duration_s() / 2.0
    left = trace.slice_time(trace.start_time(), mid)
    right = trace.slice_time(mid, np.nextafter(trace.end_time(), np.inf))
    return (left, right)


def split_fixed_time(trace: Trace, window_s: float) -> List[Trace]:
    """Cut *trace* into consecutive windows of *window_s* seconds.

    Empty windows are skipped.  With ``window_s = 86 400`` this models
    the daily-upload crowdsensing scenario of §4.2.
    """
    if window_s <= 0:
        raise ConfigurationError(f"window_s must be positive, got {window_s}")
    if len(trace) == 0:
        return []
    chunks: List[Trace] = []
    t0 = trace.start_time()
    end = trace.end_time()
    while t0 <= end:
        chunk = trace.slice_time(t0, t0 + window_s)
        if len(chunk) > 0:
            chunks.append(chunk)
        t0 += window_s
    return chunks


def split_on_gaps(trace: Trace, max_gap_s: float) -> List[Trace]:
    """Split *trace* wherever consecutive records are more than *max_gap_s* apart.

    Paper §6 suggests splitting "according to time gaps" as an alternative
    fine-grained policy; this provides it.
    """
    if max_gap_s <= 0:
        raise ConfigurationError(f"max_gap_s must be positive, got {max_gap_s}")
    if len(trace) == 0:
        return []
    t = trace.timestamps
    breaks = np.nonzero(np.diff(t) > max_gap_s)[0] + 1
    pieces: List[Trace] = []
    start = 0
    for b in list(breaks) + [len(trace)]:
        pieces.append(
            Trace(trace.user_id, t[start:b], trace.lats[start:b], trace.lngs[start:b])
        )
        start = b
    return pieces


def most_active_window(trace: Trace, days: int = 30) -> Trace:
    """Restrict *trace* to its most active *days*-long window (most records).

    Mirrors the paper's preprocessing: "we considered the 30 most active
    successive days of each dataset".  The window is aligned to whole days
    from the trace start and chosen to maximise the record count.
    """
    if days <= 0:
        raise ConfigurationError(f"days must be positive, got {days}")
    if len(trace) == 0:
        return trace
    window = days * SECONDS_PER_DAY
    if trace.duration_s() <= window:
        return trace
    t = trace.timestamps
    best_start = trace.start_time()
    best_count = -1
    start = trace.start_time()
    while start <= trace.end_time():
        count = int(np.count_nonzero((t >= start) & (t < start + window)))
        if count > best_count:
            best_count = count
            best_start = start
        start += SECONDS_PER_DAY
    return trace.slice_time(best_start, best_start + window)


def train_test_split(
    dataset: MobilityDataset,
    train_days: int = 15,
    test_days: int = 15,
    min_records: int = 2,
) -> Tuple[MobilityDataset, MobilityDataset]:
    """Chronological per-user split into background knowledge and shared trace.

    Each user's trace is first restricted to its most active
    ``train_days + test_days`` window, then cut at the boundary.  Users
    that end up with fewer than *min_records* records on either side are
    dropped from **both** halves ("only active users during those periods
    were considered", §4.2).
    """
    train = MobilityDataset(f"{dataset.name}-train")
    test = MobilityDataset(f"{dataset.name}-test")
    for trace in dataset.traces():
        if len(trace) == 0:
            continue
        window = most_active_window(trace, days=train_days + test_days)
        cut = window.start_time() + train_days * SECONDS_PER_DAY
        past = window.slice_time(window.start_time(), cut)
        future = window.slice_time(cut, np.nextafter(window.end_time(), np.inf))
        if len(past) < min_records or len(future) < min_records:
            continue
        train.add(past)
        test.add(future)
    return (train, test)
