"""Mobility datasets: a collection of one trace per user.

Mirrors the paper's system model (§3.1): every user contributes the trace
``T_u`` she wants to share, while a second dataset of past traces ``H_u``
forms the attacker's background knowledge.  :class:`MobilityDataset` is
deliberately dict-like and immutable-ish: transformations return new
datasets, which keeps experiment code free of aliasing bugs.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.trace import Trace
from repro.errors import DuplicateUserError, UnknownUserError


class MobilityDataset:
    """A named set of mobility traces, at most one per user id."""

    def __init__(self, name: str, traces: Iterable[Trace] = ()) -> None:
        self.name = name
        self._traces: Dict[str, Trace] = {}
        for trace in traces:
            self.add(trace)

    # -- mutation (construction time only) ------------------------------

    def add(self, trace: Trace) -> None:
        """Insert *trace*; raises :class:`DuplicateUserError` on id clash."""
        if trace.user_id in self._traces:
            raise DuplicateUserError(
                f"dataset {self.name!r} already has a trace for {trace.user_id!r}"
            )
        self._traces[trace.user_id] = trace

    # -- dict-like access ------------------------------------------------

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self._traces.values())

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._traces

    def __getitem__(self, user_id: str) -> Trace:
        try:
            return self._traces[user_id]
        except KeyError:
            raise UnknownUserError(user_id) from None

    def get(self, user_id: str, default: Optional[Trace] = None) -> Optional[Trace]:
        """Trace of *user_id*, or *default* if absent."""
        return self._traces.get(user_id, default)

    def user_ids(self) -> List[str]:
        """Sorted list of user ids (stable iteration order for experiments)."""
        return sorted(self._traces)

    def traces(self) -> List[Trace]:
        """Traces sorted by user id."""
        return [self._traces[u] for u in self.user_ids()]

    def __repr__(self) -> str:
        return (
            f"MobilityDataset(name={self.name!r}, users={len(self)}, "
            f"records={self.record_count()})"
        )

    # -- statistics --------------------------------------------------------

    def record_count(self) -> int:
        """Total number of records across all traces (``|D|_r`` in Eq. 7)."""
        return sum(len(t) for t in self._traces.values())

    def time_span(self) -> Tuple[float, float]:
        """``(earliest, latest)`` timestamp over non-empty traces."""
        nonempty = [t for t in self._traces.values() if len(t) > 0]
        if not nonempty:
            raise ValueError(f"dataset {self.name!r} has no records")
        return (
            min(t.start_time() for t in nonempty),
            max(t.end_time() for t in nonempty),
        )

    # -- transformations ------------------------------------------------------

    def map_traces(self, fn: Callable[[Trace], Trace], name: Optional[str] = None) -> "MobilityDataset":
        """Apply *fn* to every trace, producing a new dataset."""
        return MobilityDataset(name or self.name, (fn(t) for t in self.traces()))

    def filter_users(
        self, predicate: Callable[[Trace], bool], name: Optional[str] = None
    ) -> "MobilityDataset":
        """Keep only traces for which *predicate* holds."""
        return MobilityDataset(name or self.name, (t for t in self.traces() if predicate(t)))

    def subset(self, user_ids: Iterable[str], name: Optional[str] = None) -> "MobilityDataset":
        """Dataset restricted to *user_ids* (all of which must exist)."""
        return MobilityDataset(name or self.name, (self[u] for u in user_ids))

    def without_users(self, user_ids: Iterable[str], name: Optional[str] = None) -> "MobilityDataset":
        """Dataset with the given users removed."""
        drop = set(user_ids)
        return MobilityDataset(
            name or self.name, (t for t in self.traces() if t.user_id not in drop)
        )

    def slice_time(self, t_from: float, t_to: float, name: Optional[str] = None) -> "MobilityDataset":
        """Restrict every trace to the window ``[t_from, t_to)``, dropping emptied users."""
        out = MobilityDataset(name or self.name)
        for trace in self.traces():
            sub = trace.slice_time(t_from, t_to)
            if len(sub) > 0:
                out.add(sub)
        return out
