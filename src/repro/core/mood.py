"""Legacy MooD entry point (deprecated).

The MooD cascade now lives in :mod:`repro.core.engine`; this module
keeps the original ``Mood`` class importable as a thin, deprecated
subclass of :class:`~repro.core.engine.ProtectionEngine`, together with
the result types and split helpers that historically lived here.

Migration::

    # old
    mood = Mood(lppms, attacks, delta_s=4 * 3600.0)
    result = mood.protect(trace)

    # new
    from repro.core.engine import ProtectionEngine
    engine = ProtectionEngine(lppms, attacks, delta_s=4 * 3600.0)
    result = engine.protect(trace)

or, fully declaratively::

    from repro.config import ProtectionConfig
    engine = ProtectionEngine.from_config(ProtectionConfig.from_file(path))
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any, Optional, Sequence

# Re-exported for backwards compatibility: these names were born here.
from repro.core.engine import (  # noqa: F401
    DEFAULT_CHUNK_S,
    DEFAULT_DELTA_S,
    MoodResult,
    ProtectedPiece,
    ProtectionEngine,
    _renew_ids,
    _split_at_largest_gap,
    _split_between_pois,
)
from repro.core.search import CompositionSearchStrategy
from repro.core.trace import Trace
from repro.lppm.base import LPPM

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.attacks.base import Attack

__all__ = [
    "DEFAULT_CHUNK_S",
    "DEFAULT_DELTA_S",
    "Mood",
    "MoodResult",
    "ProtectedPiece",
]


class Mood(ProtectionEngine):
    """Deprecated alias of :class:`~repro.core.engine.ProtectionEngine`.

    Kept so existing code and notebooks keep running; construction emits
    a :class:`DeprecationWarning`.  The historical private hooks
    ``_search_protecting_lppm`` remain available (the public spellings
    are :meth:`~repro.core.engine.ProtectionEngine.search_whole_trace`
    and :meth:`~repro.core.engine.ProtectionEngine.finalize`).
    """

    SPLIT_POLICIES = ("half", "gap", "inter-poi")

    def __init__(
        self,
        lppms: Sequence[LPPM],
        attacks: "Sequence[Attack]",
        delta_s: float = DEFAULT_DELTA_S,
        max_composition_length: Optional[int] = None,
        seed: int = 0,
        split_policy: str = "half",
        search_strategy: Optional[CompositionSearchStrategy] = None,
    ) -> None:
        warnings.warn(
            "Mood is deprecated; use repro.core.engine.ProtectionEngine "
            "(or ProtectionEngine.from_config for declarative set-up)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            lppms,
            attacks,
            delta_s=delta_s,
            max_composition_length=max_composition_length,
            seed=seed,
            split_policy=split_policy,
            search_strategy=search_strategy,
            executor="serial",
            jobs=1,
        )

    def _search_protecting_lppm(self, trace: Trace) -> Any:
        """Deprecated private spelling of :meth:`search_whole_trace`."""
        return self.search_whole_trace(trace)
