"""The MooD engine (paper §3, Algorithm 1).

MooD protects one user's mobility trace through three cascading stages:

1. **Single-LPPM search** — apply every base mechanism; if at least one
   defeats all attacks, publish the lowest-distortion winner.
2. **Multi-LPPM composition search** — apply every ordered composition
   ``C − L`` (12 chains for n = 3); again keep the lowest-distortion
   protecting output.
3. **Fine-grained protection** — split the trace in half by time and
   recurse on each half under fresh pseudonyms, until the sub-trace
   duration falls below the floor ``δ`` (4 h in the paper), at which
   point the still-vulnerable records are erased.

The result is a set of protected *pieces* (published sub-traces that
appear to come from unrelated users) plus the records that had to be
erased — from which data loss (Eq. 7) is computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.core.composition import ComposedLPPM, enumerate_compositions
from repro.core.search import CompositionSearchStrategy
from repro.core.split import split_fixed_time, split_in_half
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.lppm.base import LPPM
from repro.lppm.hybrid import is_protected
from repro.metrics.distortion import spatial_temporal_distortion
from repro.rng import make_rng, stable_user_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.attacks.base import Attack

#: Paper defaults (§4.2): recursion floor and crowdsensing chunk length.
DEFAULT_DELTA_S = 4 * 3600.0
DEFAULT_CHUNK_S = 24 * 3600.0


@dataclass(frozen=True)
class ProtectedPiece:
    """One published sub-trace: obfuscated data under a fresh pseudonym."""

    pseudonym: str
    original_user: str
    #: The raw sub-trace this piece protects.
    original: Trace
    #: The published, obfuscated sub-trace (``user_id == pseudonym``).
    published: Trace
    #: Name of the protecting mechanism or composition chain.
    mechanism: str
    #: STD of the published piece against its raw sub-trace, metres.
    distortion_m: float


@dataclass
class MoodResult:
    """Outcome of protecting one user's trace."""

    user_id: str
    pieces: List[ProtectedPiece] = field(default_factory=list)
    #: Raw sub-traces that could not be protected and were erased.
    erased: List[Trace] = field(default_factory=list)
    #: Record count of the input trace.
    original_records: int = 0

    @property
    def erased_records(self) -> int:
        return sum(len(t) for t in self.erased)

    @property
    def published_records(self) -> int:
        """Records of the *raw* sub-traces that got published protected."""
        return sum(len(p.original) for p in self.pieces)

    @property
    def fully_protected(self) -> bool:
        """True iff nothing was erased (the user's "disease" was cured)."""
        return self.original_records > 0 and self.erased_records == 0

    @property
    def whole_trace_protected(self) -> bool:
        """True iff the trace was protected without fine-grained splitting."""
        return self.fully_protected and len(self.pieces) == 1

    @property
    def data_loss(self) -> float:
        """Per-user share of erased records (Eq. 7 restricted to this user)."""
        if self.original_records == 0:
            return 0.0
        return self.erased_records / self.original_records

    def mean_distortion_m(self) -> float:
        """Record-weighted mean STD over published pieces (``inf`` if none)."""
        total = self.published_records
        if total == 0:
            return float("inf")
        return sum(p.distortion_m * len(p.original) for p in self.pieces) / total


class Mood:
    """User-centric fine-grained multi-LPPM protection (Algorithm 1).

    Parameters
    ----------
    lppms:
        The base mechanism set ``L`` (already fitted where applicable).
    attacks:
        The fitted re-identification attack suite ``A``.  MooD owns the
        ground truth, so it can evaluate Eq. 5/6 directly.
    delta_s:
        Recursion floor ``δ``: sub-traces shorter than this are erased
        rather than split further.
    max_composition_length:
        Cap on composition chain length (``None`` = all ``n`` stages).
    seed:
        Base seed; every (user, mechanism, sub-trace) application derives
        a stable child seed, so results are order-independent.
    split_policy:
        Fine-grained splitting rule: ``"half"`` (temporal midpoint, the
        paper's choice), ``"gap"`` (largest sensing gap — paper §6
        future work), or ``"inter-poi"`` (between consecutive POI
        visits — paper §6 future work; falls back to ``"half"`` when a
        sub-trace has fewer than two POIs).
    search_strategy:
        Optional :class:`~repro.core.search.CompositionSearchStrategy`
        controlling candidate order and early stopping (§6's "new
        heuristics"); ``None`` reproduces the paper's exhaustive
        lowest-distortion search.
    """

    SPLIT_POLICIES = ("half", "gap", "inter-poi")

    def __init__(
        self,
        lppms: Sequence[LPPM],
        attacks: "Sequence[Attack]",
        delta_s: float = DEFAULT_DELTA_S,
        max_composition_length: Optional[int] = None,
        seed: int = 0,
        split_policy: str = "half",
        search_strategy: Optional[CompositionSearchStrategy] = None,
    ) -> None:
        if not lppms:
            raise ConfigurationError("MooD needs at least one LPPM")
        if not attacks:
            raise ConfigurationError("MooD needs at least one attack")
        if delta_s <= 0:
            raise ConfigurationError(f"delta_s must be positive, got {delta_s}")
        if split_policy not in self.SPLIT_POLICIES:
            raise ConfigurationError(
                f"unknown split_policy {split_policy!r}; choose from {self.SPLIT_POLICIES}"
            )
        self.lppms = list(lppms)
        self.attacks = list(attacks)
        self.delta_s = float(delta_s)
        self.seed = int(seed)
        self.split_policy = split_policy
        self.search_strategy = search_strategy
        #: Number of (mechanism, trace) evaluations performed — the §6
        #: brute-force cost counter the search strategies aim to reduce.
        self.evaluations = 0
        self.singles: List[ComposedLPPM] = enumerate_compositions(
            self.lppms, min_length=1, max_length=1
        )
        self.chains: List[ComposedLPPM] = enumerate_compositions(
            self.lppms, min_length=2, max_length=max_composition_length
        )

    # -- Algorithm 1 -----------------------------------------------------

    def protect(self, trace: Trace) -> MoodResult:
        """Protect *trace*; returns published pieces and erased leftovers."""
        result = MoodResult(user_id=trace.user_id, original_records=len(trace))
        self._protect_rec(trace, result)
        _renew_ids(result)
        return result

    def protect_daily(self, trace: Trace, chunk_s: float = DEFAULT_CHUNK_S) -> MoodResult:
        """Crowdsensing variant (§4.5): chunk into *chunk_s* windows first.

        Each chunk is protected independently (composition search, then
        recursive fine-grained splitting), modelling users who upload
        their data daily.
        """
        result = MoodResult(user_id=trace.user_id, original_records=len(trace))
        for chunk in split_fixed_time(trace, chunk_s):
            self._protect_rec(chunk, result)
        _renew_ids(result)
        return result

    # -- internals ------------------------------------------------------------

    def _protect_rec(self, trace: Trace, result: MoodResult) -> None:
        """Recursive body of Algorithm 1 (lines 4-37)."""
        if len(trace) == 0:
            return
        piece = self._search_protecting_lppm(trace)
        if piece is not None:
            result.pieces.append(piece)
            return
        if trace.duration_s() >= self.delta_s and len(trace) >= 2:
            left, right = self._split(trace)
            if len(left) == 0 or len(right) == 0:
                result.erased.append(trace)
                return
            self._protect_rec(left, result)
            self._protect_rec(right, result)
        else:
            result.erased.append(trace)

    def _split(self, trace: Trace) -> Tuple[Trace, Trace]:
        """Cut *trace* in two according to the configured split policy."""
        if self.split_policy == "gap":
            return _split_at_largest_gap(trace)
        if self.split_policy == "inter-poi":
            return _split_between_pois(trace)
        return split_in_half(trace)

    def _search_protecting_lppm(self, trace: Trace) -> Optional[ProtectedPiece]:
        """Lines 4-26: single-LPPM search, then multi-LPPM compositions."""
        winner = self._best_protecting(trace, self.singles)
        if winner is None:
            winner = self._best_protecting(trace, self.chains)
        if winner is None:
            return None
        published, mechanism, distortion = winner
        return ProtectedPiece(
            pseudonym=trace.user_id,  # renewed after the full recursion
            original_user=trace.user_id,
            original=trace,
            published=published,
            mechanism=mechanism,
            distortion_m=distortion,
        )

    def _best_protecting(
        self, trace: Trace, mechanisms: Sequence[ComposedLPPM]
    ) -> Optional[Tuple[Trace, str, float]]:
        """Lowest-STD output among the mechanisms that defeat all attacks.

        With a :attr:`search_strategy`, candidates are tried in the
        strategy's order; a strategy with ``stop_at_first_success``
        returns the first protecting output (trading utility for fewer
        attack evaluations, §6).
        """
        ordered = list(mechanisms)
        strategy = self.search_strategy
        if strategy is not None:
            by_name = {m.name: m for m in mechanisms}
            ordered = [by_name[n] for n in strategy.order(list(by_name))]
        best: Optional[Tuple[Trace, str, float]] = None
        for mech in ordered:
            rng = make_rng(
                stable_user_seed(
                    self.seed,
                    f"{trace.user_id}|{mech.name}|{trace.start_time():.0f}|{len(trace)}",
                )
            )
            candidate = mech.apply(trace, rng)
            if len(candidate) == 0:
                continue
            self.evaluations += 1
            protected = is_protected(candidate, trace.user_id, self.attacks)
            if strategy is not None:
                strategy.record_outcome(mech.name, protected)
            if not protected:
                continue
            distortion = spatial_temporal_distortion(trace, candidate)
            if best is None or distortion < best[2]:
                best = (candidate, mech.name, distortion)
            if strategy is not None and strategy.stop_at_first_success:
                break
        return best


def _split_at_largest_gap(trace: Trace) -> Tuple[Trace, Trace]:
    """Split at the largest inter-record time gap (paper §6 alternative).

    Falls back to the temporal midpoint when the trace has no interior
    gap (fewer than 3 records).
    """
    import numpy as np

    if len(trace) < 3:
        return split_in_half(trace)
    gaps = np.diff(trace.timestamps)
    cut_index = int(np.argmax(gaps)) + 1
    if cut_index <= 0 or cut_index >= len(trace):
        return split_in_half(trace)
    cut_time = float(trace.timestamps[cut_index])
    left = trace.slice_time(trace.start_time(), cut_time)
    right = trace.slice_time(cut_time, np.nextafter(trace.end_time(), np.inf))
    return (left, right)


def _split_between_pois(trace: Trace) -> Tuple[Trace, Trace]:
    """Split between the two consecutive POI visits nearest the midpoint.

    Separating discriminative stays (§3.1: "splitting traces …
    inter-POIs") isolates mobility patterns better than a blind halving;
    traces with fewer than two POI visits fall back to halving.
    """
    import numpy as np

    from repro.poi.clustering import extract_pois

    visits = extract_pois(trace, diameter_m=200.0, min_dwell_s=3600.0)
    if len(visits) < 2:
        return split_in_half(trace)
    middle = trace.start_time() + trace.duration_s() / 2.0
    boundaries = [
        0.5 * (a.t_exit + b.t_enter) for a, b in zip(visits, visits[1:])
    ]
    cut_time = min(boundaries, key=lambda b: abs(b - middle))
    if cut_time <= trace.start_time() or cut_time >= trace.end_time():
        return split_in_half(trace)
    left = trace.slice_time(trace.start_time(), cut_time)
    right = trace.slice_time(cut_time, np.nextafter(trace.end_time(), np.inf))
    return (left, right)


def _renew_ids(result: MoodResult) -> None:
    """Line 34: publish each piece under a fresh pseudonym ``user#k``.

    Pseudonyms are deterministic (piece order) so repeated runs publish
    identical datasets.  A single whole-trace piece keeps suffix 0 as
    well — the published id never reveals whether splitting happened.
    """
    renewed: List[ProtectedPiece] = []
    for k, piece in enumerate(result.pieces):
        pseudonym = f"{piece.original_user}#{k}"
        renewed.append(
            ProtectedPiece(
                pseudonym=pseudonym,
                original_user=piece.original_user,
                original=piece.original,
                published=piece.published.with_user(pseudonym),
                mechanism=piece.mechanism,
                distortion_m=piece.distortion_m,
            )
        )
    result.pieces = renewed
