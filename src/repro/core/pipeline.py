"""Dataset-level protection pipelines.

The experiment harness needs three evaluation modes, all defined here:

* :func:`evaluate_lppm` — apply one mechanism to every user of a test
  dataset and run every attack on the result (Figures 2, 3, 6, 7, 9);
* :func:`evaluate_hybrid` — the user-centric single-LPPM baseline [22];
* :func:`evaluate_mood` — the full MooD engine, optionally with the
  daily-chunk crowdsensing mode for surviving users (Figures 6-10).

All functions take *fitted* attacks; fitting (on the training half of
the dataset) is the caller's responsibility so that one fit is shared
across the many evaluations of a figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from repro.core.dataset import MobilityDataset
from repro.core.mood import Mood, MoodResult
from repro.core.trace import Trace
from repro.lppm.base import LPPM
from repro.lppm.hybrid import HybridLPPM, HybridResult
from repro.metrics.dataloss import data_loss
from repro.metrics.distortion import spatial_temporal_distortion
from repro.rng import make_rng, stable_user_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.attacks.base import Attack


@dataclass
class LppmEvaluation:
    """Everything the figures need about one (dataset, LPPM) pair."""

    dataset_name: str
    lppm_name: str
    #: ``guesses[user][attack_name]`` — who each attack thinks the user is.
    guesses: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: Obfuscated trace per user.
    obfuscated: Dict[str, Trace] = field(default_factory=dict)
    #: STD per user, metres.
    distortions: Dict[str, float] = field(default_factory=dict)

    def non_protected(self, attack_names: Optional[Sequence[str]] = None) -> Set[str]:
        """Users re-identified by ≥1 of the given attacks (default: all)."""
        out: Set[str] = set()
        for user, per_attack in self.guesses.items():
            names = attack_names if attack_names is not None else list(per_attack)
            if any(per_attack.get(a) == user for a in names):
                out.add(user)
        return out

    def protected(self, attack_names: Optional[Sequence[str]] = None) -> Set[str]:
        """Complement of :meth:`non_protected` over evaluated users."""
        return set(self.guesses) - self.non_protected(attack_names)


def evaluate_lppm(
    lppm: LPPM,
    test: MobilityDataset,
    attacks: "Sequence[Attack]",
    seed: int = 0,
) -> LppmEvaluation:
    """Obfuscate every test trace with *lppm* and attack the result.

    Unlike the protection-side checks (which short-circuit), evaluation
    records the verdict of **every** attack so a single pass serves both
    the single-attack (Figure 6) and multi-attack (Figure 7) readouts.
    """
    ev = LppmEvaluation(dataset_name=test.name, lppm_name=lppm.name)
    for trace in test.traces():
        rng = make_rng(stable_user_seed(seed, f"{trace.user_id}|{lppm.name}"))
        obfuscated = lppm.apply(trace, rng)
        ev.obfuscated[trace.user_id] = obfuscated
        if len(obfuscated) > 0:
            ev.distortions[trace.user_id] = spatial_temporal_distortion(trace, obfuscated)
        else:
            ev.distortions[trace.user_id] = float("inf")
        per_attack: Dict[str, str] = {}
        for attack in attacks:
            per_attack[attack.name] = (
                attack.reidentify(obfuscated) if len(obfuscated) > 0 else ""
            )
        ev.guesses[trace.user_id] = per_attack
    return ev


@dataclass
class HybridEvaluation:
    """Per-user hybrid outcomes plus dataset-level aggregates."""

    dataset_name: str
    results: Dict[str, HybridResult] = field(default_factory=dict)

    def non_protected(self) -> Set[str]:
        return {u for u, r in self.results.items() if not r.protected}

    def data_loss(self, dataset: MobilityDataset) -> float:
        return data_loss(dataset, self.non_protected())

    def distortions(self) -> Dict[str, float]:
        """STD of the protected users only."""
        return {u: r.distortion_m for u, r in self.results.items() if r.protected}


def evaluate_hybrid(
    hybrid: HybridLPPM,
    test: MobilityDataset,
) -> HybridEvaluation:
    """Run the hybrid baseline over every user of *test*."""
    ev = HybridEvaluation(dataset_name=test.name)
    for trace in test.traces():
        ev.results[trace.user_id] = hybrid.protect(trace)
    return ev


@dataclass
class MoodEvaluation:
    """Per-user MooD outcomes plus dataset-level aggregates."""

    dataset_name: str
    results: Dict[str, MoodResult] = field(default_factory=dict)

    def non_protected(self) -> Set[str]:
        """Users with at least one erased record (not fully curable)."""
        return {u for u, r in self.results.items() if not r.fully_protected}

    def composition_survivors(self) -> Set[str]:
        """Users whose *whole* trace resisted single and multi-LPPM search.

        These are the users handed to the fine-grained stage — the bars
        of Figures 6/7 count them.
        """
        return {u for u, r in self.results.items() if not r.whole_trace_protected}

    def data_loss(self) -> float:
        """Record-level loss over the dataset (Eq. 7, sub-trace aware)."""
        total = sum(r.original_records for r in self.results.values())
        if total == 0:
            return 0.0
        lost = sum(r.erased_records for r in self.results.values())
        return lost / total

    def distortions(self) -> Dict[str, float]:
        """Record-weighted mean STD per user with published data."""
        return {
            u: r.mean_distortion_m()
            for u, r in self.results.items()
            if r.published_records > 0
        }

    def published_dataset(self, name: Optional[str] = None) -> MobilityDataset:
        """Assemble the published (pseudonymised, protected) dataset."""
        out = MobilityDataset(name or f"{self.dataset_name}-published")
        for result in self.results.values():
            for piece in result.pieces:
                out.add(piece.published)
        return out


def evaluate_mood(
    mood: Mood,
    test: MobilityDataset,
    composition_only: bool = False,
) -> MoodEvaluation:
    """Run MooD over every user of *test*.

    With ``composition_only=True`` the engine's fine-grained recursion is
    disabled (δ = ∞): users not protectable by any composition stay
    non-protected, which is the readout of Figures 6 and 7.  Otherwise
    the full Algorithm 1 runs with daily chunking for users whose whole
    trace resisted the composition search (§4.5).
    """
    ev = MoodEvaluation(dataset_name=test.name)
    for trace in test.traces():
        whole = mood._search_protecting_lppm(trace)
        if whole is not None:
            result = MoodResult(user_id=trace.user_id, original_records=len(trace))
            result.pieces.append(whole)
            from repro.core.mood import _renew_ids

            _renew_ids(result)
        elif composition_only:
            result = MoodResult(user_id=trace.user_id, original_records=len(trace))
            result.erased.append(trace)
        else:
            result = mood.protect_daily(trace)
        ev.results[trace.user_id] = result
    return ev
