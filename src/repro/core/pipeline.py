"""Legacy dataset-level pipelines (deprecated).

The three historical entry points — :func:`evaluate_lppm`,
:func:`evaluate_hybrid`, :func:`evaluate_mood` — are now thin shims over
the unified :meth:`repro.core.engine.ProtectionEngine.evaluate`, which
additionally supports parallel executors.  The evaluation dataclasses
(:class:`LppmEvaluation`, :class:`HybridEvaluation`,
:class:`MoodEvaluation`) moved to :mod:`repro.core.engine` and are
re-exported here unchanged.

Migration::

    # old                                        # new
    evaluate_lppm(lppm, test, attacks, seed)     engine.evaluate("lppm", test, lppm=lppm).result
    evaluate_hybrid(hybrid, test)                engine.evaluate("hybrid", test, hybrid=hybrid).result
    evaluate_mood(mood, test, composition_only)  engine.evaluate("mood", test, composition_only=...).result
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Sequence

from repro.core.dataset import MobilityDataset
from repro.core.engine import (  # noqa: F401  (re-exports)
    EvaluationReport,
    HybridEvaluation,
    LppmEvaluation,
    MoodEvaluation,
    ProtectionEngine,
    ProtectionReport,
)
from repro.lppm.base import LPPM
from repro.lppm.hybrid import HybridLPPM

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.attacks.base import Attack

__all__ = [
    "LppmEvaluation",
    "HybridEvaluation",
    "MoodEvaluation",
    "evaluate_lppm",
    "evaluate_hybrid",
    "evaluate_mood",
]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new}", DeprecationWarning, stacklevel=3
    )


def evaluate_lppm(
    lppm: LPPM,
    test: MobilityDataset,
    attacks: "Sequence[Attack]",
    seed: int = 0,
) -> LppmEvaluation:
    """Deprecated shim: obfuscate every test trace and attack the result.

    Use ``ProtectionEngine(...).evaluate("lppm", test, lppm=...)``.
    """
    _deprecated("evaluate_lppm", 'ProtectionEngine.evaluate("lppm", ...)')
    engine = ProtectionEngine([lppm], attacks, seed=seed)
    return engine.evaluate("lppm", test, lppm=lppm).result


def evaluate_hybrid(
    hybrid: HybridLPPM,
    test: MobilityDataset,
) -> HybridEvaluation:
    """Deprecated shim: run the hybrid baseline over every user of *test*.

    Use ``ProtectionEngine(...).evaluate("hybrid", test, hybrid=...)``.
    """
    _deprecated("evaluate_hybrid", 'ProtectionEngine.evaluate("hybrid", ...)')
    engine = ProtectionEngine(hybrid.lppms, hybrid.attacks, seed=hybrid.seed)
    return engine.evaluate("hybrid", test, hybrid=hybrid).result


def evaluate_mood(
    mood: ProtectionEngine,
    test: MobilityDataset,
    composition_only: bool = False,
) -> MoodEvaluation:
    """Deprecated shim: run the full MooD cascade over every user of *test*.

    Use ``engine.evaluate("mood", test, composition_only=...)``.
    """
    _deprecated("evaluate_mood", 'ProtectionEngine.evaluate("mood", ...)')
    return mood.evaluate("mood", test, composition_only=composition_only).result
