"""Ordered composition of LPPMs (paper §3.1, Eq. 3).

A composition ``C_p = L_ip ∘ … ∘ L_i1`` applies *p* distinct LPPMs
sequentially: the output trace of one is the input of the next.  Order
matters (function composition), so from ``n`` base LPPMs there are

    |C| = Σ_{i=1..n} n! / (n−i)!

compositions — 15 for n = 3, of which the 12 with p ≥ 2 are the true
*multi-LPPM* chains searched by MooD after every single LPPM has failed.
"""

from __future__ import annotations

from itertools import permutations
from math import factorial
from typing import List, Optional, Sequence

from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.lppm.base import LPPM
from repro.rng import SeedLike, make_rng


class ComposedLPPM(LPPM):
    """The sequential application of an ordered list of LPPMs."""

    def __init__(self, stages: Sequence[LPPM]) -> None:
        if not stages:
            raise ConfigurationError("a composition needs at least one LPPM")
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"a composition must not repeat a mechanism, got {names}"
            )
        self.stages: List[LPPM] = list(stages)
        self.name = "+".join(names)

    def __len__(self) -> int:
        return len(self.stages)

    def apply(self, trace: Trace, rng: Optional[SeedLike] = None) -> Trace:
        gen = make_rng(rng)
        out = trace
        for stage in self.stages:
            out = stage.apply(out, gen)
        return out

    def __repr__(self) -> str:
        return f"ComposedLPPM({self.name!r})"


def composition_count(n: int) -> int:
    """``Σ_{i=1..n} n!/(n−i)!`` — the size of C for *n* base LPPMs."""
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    return sum(factorial(n) // factorial(n - i) for i in range(1, n + 1))


def enumerate_compositions(
    lppms: Sequence[LPPM],
    min_length: int = 1,
    max_length: Optional[int] = None,
) -> List[ComposedLPPM]:
    """All ordered compositions of distinct LPPMs, shortest first.

    With ``min_length=2`` this yields ``C − L``, the multi-LPPM chains of
    Algorithm 1 line 16.  Enumeration order is deterministic: by length,
    then by the order of *lppms*, so experiment runs are reproducible.
    """
    n = len(lppms)
    if len({l.name for l in lppms}) != n:
        raise ConfigurationError("base LPPMs must have unique names")
    top = n if max_length is None else min(max_length, n)
    out: List[ComposedLPPM] = []
    for length in range(max(1, min_length), top + 1):
        for combo in permutations(lppms, length):
            out.append(ComposedLPPM(combo))
    return out
