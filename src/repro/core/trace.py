"""Mobility traces: timestamp-sorted sequences of records owned by a user.

A :class:`Trace` is the unit every LPPM, attack, and MooD itself operates
on (paper §2.1: ``T ∈ (R² × R⁺)*``).  Internally the trace is backed by
three parallel numpy arrays (timestamps, latitudes, longitudes) because
the hot paths — heatmap accumulation, Laplace perturbation, distortion —
are all vectorisable.  Traces are immutable: every transformation returns
a new instance.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.record import Record
from repro.errors import EmptyTraceError, UnsortedTraceError


class Trace:
    """An immutable, chronologically sorted mobility trace.

    Parameters
    ----------
    user_id:
        Owner of the trace.  Fine-grained protection publishes sub-traces
        under renewed pseudonyms (see :func:`repro.core.mood.renew_ids`).
    timestamps, lats, lngs:
        Parallel arrays.  ``timestamps`` must be non-decreasing.
    """

    __slots__ = ("user_id", "_t", "_lat", "_lng", "_fp")

    def __init__(
        self,
        user_id: str,
        timestamps: Sequence[float],
        lats: Sequence[float],
        lngs: Sequence[float],
    ) -> None:
        t = np.asarray(timestamps, dtype=np.float64)
        lat = np.asarray(lats, dtype=np.float64)
        lng = np.asarray(lngs, dtype=np.float64)
        if not (t.shape == lat.shape == lng.shape) or t.ndim != 1:
            raise ValueError(
                f"timestamps/lats/lngs must be 1-D and equally sized, "
                f"got shapes {t.shape}, {lat.shape}, {lng.shape}"
            )
        if t.size > 1 and np.any(np.diff(t) < 0):
            raise UnsortedTraceError(f"trace of user {user_id!r} is not sorted by time")
        self.user_id = user_id
        self._t = t
        self._lat = lat
        self._lng = lng
        self._fp: Optional[bytes] = None
        self._t.setflags(write=False)
        self._lat.setflags(write=False)
        self._lng.setflags(write=False)

    # -- constructors -------------------------------------------------

    @classmethod
    def from_records(cls, user_id: str, records: Iterable[Record]) -> "Trace":
        """Build a trace from :class:`Record` objects (sorted automatically)."""
        recs = sorted(records)
        return cls(
            user_id,
            [r.t for r in recs],
            [r.lat for r in recs],
            [r.lng for r in recs],
        )

    @classmethod
    def empty(cls, user_id: str) -> "Trace":
        """An empty trace for *user_id*."""
        return cls(user_id, [], [], [])

    # -- array views ---------------------------------------------------

    @property
    def timestamps(self) -> np.ndarray:
        """Read-only array of POSIX timestamps."""
        return self._t

    @property
    def lats(self) -> np.ndarray:
        """Read-only array of latitudes (degrees)."""
        return self._lat

    @property
    def lngs(self) -> np.ndarray:
        """Read-only array of longitudes (degrees)."""
        return self._lng

    @property
    def fingerprint(self) -> bytes:
        """Content digest of the record arrays (user id excluded).

        Two traces with identical timestamps and coordinates share a
        fingerprint regardless of ownership, which is exactly what the
        feature cache needs: heatmaps, POI sets, and MMC models depend
        only on the records.  Computed lazily and memoised (traces are
        immutable).
        """
        if self._fp is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(self._t.tobytes())
            h.update(self._lat.tobytes())
            h.update(self._lng.tobytes())
            self._fp = h.digest()
        return self._fp

    # -- container protocol ---------------------------------------------

    def __len__(self) -> int:
        return int(self._t.size)

    def __bool__(self) -> bool:
        return self._t.size > 0

    def __iter__(self) -> Iterator[Record]:
        for i in range(len(self)):
            yield Record(float(self._t[i]), float(self._lat[i]), float(self._lng[i]))

    def __getitem__(self, i: int) -> Record:
        return Record(float(self._t[i]), float(self._lat[i]), float(self._lng[i]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.user_id == other.user_id
            and np.array_equal(self._t, other._t)
            and np.array_equal(self._lat, other._lat)
            and np.array_equal(self._lng, other._lng)
        )

    def __hash__(self) -> int:
        return hash((self.user_id, len(self), self.duration_s()))

    def __repr__(self) -> str:
        if len(self) == 0:
            return f"Trace(user={self.user_id!r}, empty)"
        return (
            f"Trace(user={self.user_id!r}, n={len(self)}, "
            f"span={self.duration_s() / 3600.0:.1f}h)"
        )

    # -- temporal accessors ----------------------------------------------

    def start_time(self) -> float:
        """Timestamp of the first record."""
        self._require_nonempty()
        return float(self._t[0])

    def end_time(self) -> float:
        """Timestamp of the last record."""
        self._require_nonempty()
        return float(self._t[-1])

    def duration_s(self) -> float:
        """Covered time span in seconds (0 for traces with < 2 records)."""
        if len(self) < 2:
            return 0.0
        return float(self._t[-1] - self._t[0])

    # -- transformations -------------------------------------------------

    def with_user(self, user_id: str) -> "Trace":
        """Same records under a different user id (pseudonym renewal)."""
        return Trace(user_id, self._t, self._lat, self._lng)

    def with_positions(self, lats: np.ndarray, lngs: np.ndarray) -> "Trace":
        """Same user and timestamps with replaced coordinates."""
        return Trace(self.user_id, self._t, lats, lngs)

    def slice_time(self, t_from: float, t_to: float) -> "Trace":
        """Sub-trace with records in the half-open window ``[t_from, t_to)``."""
        mask = (self._t >= t_from) & (self._t < t_to)
        return Trace(self.user_id, self._t[mask], self._lat[mask], self._lng[mask])

    def head(self, n: int) -> "Trace":
        """First *n* records."""
        return Trace(self.user_id, self._t[:n], self._lat[:n], self._lng[:n])

    def tail(self, n: int) -> "Trace":
        """Last *n* records."""
        if n <= 0:
            return Trace.empty(self.user_id)
        return Trace(self.user_id, self._t[-n:], self._lat[-n:], self._lng[-n:])

    def concat(self, other: "Trace") -> "Trace":
        """Concatenate two traces of the same user (re-sorted by time)."""
        if other.user_id != self.user_id:
            raise ValueError(
                f"cannot concat traces of different users "
                f"({self.user_id!r} vs {other.user_id!r})"
            )
        t = np.concatenate([self._t, other._t])
        lat = np.concatenate([self._lat, other._lat])
        lng = np.concatenate([self._lng, other._lng])
        order = np.argsort(t, kind="stable")
        return Trace(self.user_id, t[order], lat[order], lng[order])

    # -- geometry ----------------------------------------------------------

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """``(min_lat, min_lng, max_lat, max_lng)`` of the trace."""
        self._require_nonempty()
        return (
            float(self._lat.min()),
            float(self._lng.min()),
            float(self._lat.max()),
            float(self._lng.max()),
        )

    def centroid(self) -> Tuple[float, float]:
        """Arithmetic mean position (adequate at city scale)."""
        self._require_nonempty()
        return (float(self._lat.mean()), float(self._lng.mean()))

    # -- internals -----------------------------------------------------------

    def _require_nonempty(self) -> None:
        if len(self) == 0:
            raise EmptyTraceError(f"trace of user {self.user_id!r} is empty")


def merge_traces(user_id: str, traces: Sequence[Trace]) -> Trace:
    """Merge several traces into one owned by *user_id*, sorted by time."""
    if not traces:
        return Trace.empty(user_id)
    t = np.concatenate([tr.timestamps for tr in traces])
    lat = np.concatenate([tr.lats for tr in traces])
    lng = np.concatenate([tr.lngs for tr in traces])
    order = np.argsort(t, kind="stable")
    return Trace(user_id, t[order], lat[order], lng[order])
