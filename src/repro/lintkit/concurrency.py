"""Concurrency rules (CONC0xx).

The serving tree keeps several long-lived threads alive next to asyncio
loops: the cluster announcer, the background ``ServiceServer``, the
remote-dispatch helper.  Two habits keep that safe today and are
machine-checked here:

* state shared with a thread target is mutated under a lock
  (:class:`ThreadSharedStateRule`), and
* coroutines never call blocking I/O directly — blocking work rides
  ``run_in_executor`` (:class:`BlockingCallInAsyncRule`).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lintkit.rules import Finding, LintConfig, ModuleInfo, Rule, register

#: Calls that park the calling *thread*: poison inside a coroutine,
#: where they stall every connection multiplexed onto the loop.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "socket.create_connection",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.request",
    }
)

#: Substrings that mark a ``with`` context as a mutual-exclusion guard.
_LOCKISH = ("lock", "mutex", "cond", "sem")


def _is_lockish(expr: ast.AST, module: ModuleInfo) -> bool:
    name = module.resolve(expr)
    if name is None and isinstance(expr, ast.Call):
        name = module.resolve(expr.func)
    return name is not None and any(tok in name.lower() for tok in _LOCKISH)


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.<attr>`` → the attribute name, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _MutationScan(ast.NodeVisitor):
    """Collect unguarded shared-state mutations inside one function.

    Tracks lock depth through ``with`` statements; an assignment to
    ``self.<attr>`` (or a declared-``global`` name) at depth zero is a
    hit.  Nested function definitions are scanned too — they run on the
    same thread unless handed elsewhere, and a false hit is one
    ``# lint: allow`` away.
    """

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.lock_depth = 0
        self.globals: Set[str] = set()
        self.hits: List[Tuple[int, str]] = []

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node) -> None:
        locked = any(
            _is_lockish(item.context_expr, self.module) for item in node.items
        )
        if locked:
            self.lock_depth += 1
        self.generic_visit(node)
        if locked:
            self.lock_depth -= 1

    def visit_Global(self, node: ast.Global) -> None:
        self.globals.update(node.names)

    def _check_target(self, target: ast.AST, lineno: int) -> None:
        if self.lock_depth > 0:
            return
        attr = _self_attr(target)
        if attr is not None:
            self.hits.append((lineno, f"self.{attr}"))
        elif isinstance(target, ast.Name) and target.id in self.globals:
            self.hits.append((lineno, f"global {target.id}"))
        elif isinstance(target, ast.Tuple):
            for element in target.elts:
                self._check_target(element, lineno)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target, node.lineno)
        self.generic_visit(node)


def _method_map(class_node: ast.ClassDef) -> Dict[str, ast.AST]:
    return {
        item.name: item
        for item in class_node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _self_calls(func: ast.AST) -> Set[str]:
    """Names of ``self.<m>(...)`` calls made anywhere inside *func*."""
    called: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            attr = _self_attr(node.func)
            if attr is not None:
                called.add(attr)
    return called


@register
class ThreadSharedStateRule(Rule):
    id = "CONC001"
    title = "thread target mutates shared state without a lock"
    severity = "error"
    rationale = """A function handed to ``threading.Thread(target=...)``
    runs concurrently with everything else that touches its instance —
    ``ClusterAnnouncer``'s heartbeat loop vs. ``stop()``, the background
    ``ServiceServer`` thread vs. its owner.  Any ``self.<attr>`` (or
    declared-``global``) assignment reachable from the target must
    happen under a ``with <lock>:`` block, or carry a
    ``# lint: allow(CONC001)`` explaining the happens-before that makes
    it safe (e.g. an Event the reader waits on)."""

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        for class_node in [
            n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)
        ]:
            methods = _method_map(class_node)
            targets = self._thread_targets(class_node, methods, module)
            scanned: Set[int] = set()
            for root_name, funcs in targets:
                for func in funcs:
                    if id(func) in scanned:
                        continue
                    scanned.add(id(func))
                    scan = _MutationScan(module)
                    scan.visit(func)
                    for lineno, what in scan.hits:
                        findings.append(
                            self.finding(
                                module.relpath,
                                lineno,
                                f"`{what}` mutated on thread-target path "
                                f"`{root_name}` without a held lock",
                            )
                        )
        return findings

    def _thread_targets(
        self,
        class_node: ast.ClassDef,
        methods: Dict[str, ast.AST],
        module: ModuleInfo,
    ) -> List[Tuple[str, List[ast.AST]]]:
        """(target name, reachable function bodies) per Thread(...) call."""
        out: List[Tuple[str, List[ast.AST]]] = []
        for node in ast.walk(class_node):
            if not isinstance(node, ast.Call):
                continue
            if module.resolve(node.func) != "threading.Thread":
                continue
            target = next(
                (kw.value for kw in node.keywords if kw.arg == "target"), None
            )
            if target is None:
                continue
            attr = _self_attr(target)
            if attr is not None and attr in methods:
                # Transitive closure over self.<m>() calls: the thread
                # runs everything the target reaches inside the class.
                reachable: List[ast.AST] = []
                queue = [attr]
                seen: Set[str] = set()
                while queue:
                    name = queue.pop()
                    if name in seen or name not in methods:
                        continue
                    seen.add(name)
                    reachable.append(methods[name])
                    queue.extend(_self_calls(methods[name]))
                out.append((f"self.{attr}", reachable))
            elif isinstance(target, ast.Name):
                # A closure defined next to the Thread(...) call.
                local = self._enclosing_def(class_node, node, target.id)
                if local is not None:
                    out.append((target.id, [local]))
        return out

    def _enclosing_def(
        self, class_node: ast.ClassDef, call: ast.Call, name: str
    ) -> Optional[ast.AST]:
        for func in ast.walk(class_node):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(func):
                    if child is call:
                        for item in ast.walk(func):
                            if (
                                isinstance(
                                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                                )
                                and item.name == name
                            ):
                                return item
        return None


@register
class BlockingCallInAsyncRule(Rule):
    id = "CONC002"
    title = "blocking call inside a coroutine"
    severity = "error"
    rationale = """A blocking call on the event loop stalls every
    connection multiplexed onto it — one ``time.sleep`` inside a
    handler and the whole service misses its heartbeat deadlines.
    Blocking work belongs on the pool (``loop.run_in_executor``) or in
    its async equivalent (``asyncio.sleep``)."""

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call in self._direct_calls(node):
                name = module.resolve(call.func)
                if name in _BLOCKING_CALLS:
                    yield self.finding(
                        module.relpath,
                        call.lineno,
                        f"blocking call `{name}` inside coroutine "
                        f"`{node.name}`; use the asyncio equivalent or "
                        "run_in_executor",
                    )

    def _direct_calls(self, func: ast.AsyncFunctionDef) -> Iterable[ast.Call]:
        """Calls lexically in *func*, skipping nested ``def`` bodies
        (those run wherever they are handed — often the executor)."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))
