"""Lint core: rule registry, AST plumbing, suppression, and drivers.

Everything here is stdlib-only (``ast`` + ``os`` + ``re``) so the lint
gate runs identically on a laptop and in CI with no dependency beyond
the interpreter, mirroring ``tools/coverage_gate.py``.

The moving parts:

* :class:`Finding` — one diagnostic: rule id, severity, ``file:line``,
  message.  Its :meth:`Finding.key` is the identity the baseline file
  stores.
* :class:`ModuleInfo` — one parsed source file: AST, import alias map
  (``np`` → ``numpy``), and the per-line ``# lint: allow(...)``
  suppression table.
* :class:`Rule` — a check.  ``scope = "module"`` rules visit one file
  at a time; ``scope = "project"`` rules (the protocol-drift family)
  see the whole repository once per run.
* :func:`lint_source` / :func:`lint_paths` / :func:`lint_project` —
  the drivers, in increasing order of ambition.  Tests feed snippets
  to :func:`lint_source`; the CLI and CI run :func:`lint_project`.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: ``# lint: allow(DET001)`` / ``# lint: allow(DET001, CONC002)`` /
#: ``# lint: allow(*)`` — suppress the named rules on that line.
_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(([^)]*)\)")

SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic, ordered for stable reports: path, line, rule."""

    path: str  #: repo-relative, ``/``-separated
    line: int
    rule: str
    severity: str
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def key(self) -> str:
        """The baseline identity: rule + location (messages may reword)."""
        return f"{self.rule}@{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class LintConfig:
    """Where the linted project lives and which paths mean what.

    Every path is repo-relative with ``/`` separators, so a config (and
    the baseline file) reads the same on every platform.  Tests point
    ``repo_root`` at a temp directory to lint fixture trees.
    """

    repo_root: str = "."
    #: Directory the module rules sweep by default.
    src_root: str = "src"
    #: Packages on the publish path: code here must be wall-clock-free
    #: and entropy-free (every draw seeded through ``repro/rng.py``).
    publish_paths: Tuple[str, ...] = (
        "src/repro/core",
        "src/repro/lppm",
        "src/repro/attacks",
        "src/repro/stream",
        "src/repro/synth",
        "src/repro/datasets",
        "src/repro/poi",
        "src/repro/geo",
        "src/repro/metrics",
        "src/repro/analysis",
        "src/repro/experiments",
    )
    #: The one module allowed to touch raw RNG constructors.
    rng_module: str = "src/repro/rng.py"
    #: Codec-adjacent packages: float formatting here must round-trip.
    codec_paths: Tuple[str, ...] = ("src/repro/service", "src/repro/stream")
    #: The wire-protocol registry module (project rules parse it).
    api_module: str = "src/repro/service/api.py"
    #: The hypothesis property suite that must cover every verb.
    strategy_test: str = "tests/service/test_codec_properties.py"
    #: The protocol document that must name every verb.
    service_doc: str = "docs/SERVICE.md"

    def abspath(self, relpath: str) -> str:
        return os.path.join(self.repo_root, *relpath.split("/"))

    def in_publish_path(self, relpath: str) -> bool:
        return relpath.startswith(tuple(p + "/" for p in self.publish_paths))

    def in_codec_path(self, relpath: str) -> bool:
        return relpath.startswith(tuple(p + "/" for p in self.codec_paths))


def _parse_allows(source: str) -> Dict[int, Set[str]]:
    """Per-line suppression table: line number → allowed rule ids."""
    allows: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        if rules:
            allows[lineno] = rules
    return allows


def _import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Local name → canonical dotted module/attribute it refers to.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from time import time as now`` → ``{"now": "time.time"}``;
    ``import os.path`` → ``{"os": "os"}`` (attribute chains resolve the
    rest).  Relative imports keep their bare module name — good enough
    to resolve the stdlib/third-party calls the rules care about.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                canonical = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


@dataclass
class ModuleInfo:
    """One parsed source file plus everything rules keep re-deriving."""

    relpath: str
    source: str
    tree: ast.Module
    aliases: Dict[str, str] = field(default_factory=dict)
    allows: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, relpath: str) -> "ModuleInfo":
        tree = ast.parse(source, filename=relpath)
        return cls(
            relpath=relpath.replace(os.sep, "/"),
            source=source,
            tree=tree,
            aliases=_import_aliases(tree),
            allows=_parse_allows(source),
        )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a ``Name``/``Attribute`` expression.

        ``np.random.default_rng`` → ``numpy.random.default_rng`` under
        ``import numpy as np``; unresolvable shapes (subscripts, calls,
        lambdas) come back ``None``.  Plain names pass through, so
        builtins (``set``, ``open``) resolve to themselves and
        ``self.foo`` resolves to ``"self.foo"``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def suppressed(self, rule: str, line: int) -> bool:
        allowed = self.allows.get(line)
        return allowed is not None and (rule in allowed or "*" in allowed)


class Rule:
    """One lint check.  Subclasses set the class attributes and override
    the ``check_*`` method matching their ``scope``."""

    id: str = ""
    title: str = ""
    severity: str = "error"
    scope: str = "module"  # "module" | "project"
    #: One-paragraph rationale rendered by ``rule_catalogue()`` and the
    #: docs; keep it crisp — it is the operator-facing contract.
    rationale: str = ""

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterable[Finding]:
        return ()

    def check_project(self, config: LintConfig) -> Iterable[Finding]:
        return ()

    def finding(self, relpath: str, line: int, message: str) -> Finding:
        return Finding(
            path=relpath.replace(os.sep, "/"),
            line=line,
            rule=self.id,
            severity=self.severity,
            message=message,
        )


_RULES: Dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule.id in _RULES and type(_RULES[rule.id]) is not rule_cls:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"{rule.id}: unknown severity {rule.severity!r}")
    if rule.scope not in ("module", "project"):
        raise ValueError(f"{rule.id}: unknown scope {rule.scope!r}")
    _RULES[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def rule_catalogue() -> List[Dict[str, str]]:
    """The rule table docs/LINT.md renders (id, severity, title, why)."""
    return [
        {
            "id": rule.id,
            "severity": rule.severity,
            "scope": rule.scope,
            "title": rule.title,
            "rationale": " ".join(rule.rationale.split()),
        }
        for rule in all_rules()
    ]


def _module_rules(rules: Optional[Sequence[Rule]]) -> List[Rule]:
    chosen = list(rules) if rules is not None else all_rules()
    return [rule for rule in chosen if rule.scope == "module"]


def lint_source(
    source: str,
    relpath: str,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run the module-scope rules over one source string.

    The test-suite entry point: fixture snippets go in, findings come
    out, with ``# lint: allow`` suppression applied.
    """
    config = config if config is not None else LintConfig()
    try:
        module = ModuleInfo.from_source(source, relpath)
    except SyntaxError as exc:
        return [
            Finding(
                path=relpath.replace(os.sep, "/"),
                line=int(exc.lineno or 1),
                rule="LINT000",
                severity="error",
                message=f"source does not parse: {exc.msg}",
            )
        ]
    findings: List[Finding] = []
    for rule in _module_rules(rules):
        for finding in rule.check_module(module, config):
            if not module.suppressed(finding.rule, finding.line):
                findings.append(finding)
    return sorted(findings)


def iter_py_files(root: str) -> Iterator[str]:
    """Every ``*.py`` under *root*, in sorted (deterministic) order."""
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Module-scope rules over files and/or directory trees."""
    config = config if config is not None else LintConfig()
    findings: List[Finding] = []
    for path in paths:
        files = iter_py_files(path) if os.path.isdir(path) else [path]
        for file_path in files:
            relpath = os.path.relpath(file_path, config.repo_root)
            with open(file_path, "r", encoding="utf-8") as f:
                source = f.read()
            findings.extend(lint_source(source, relpath, config, rules))
    return sorted(findings)


def lint_project(
    config: Optional[LintConfig] = None,
    paths: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """The full pass: module rules over ``src/`` (or *paths*) plus the
    project-scope protocol rules, sorted for a stable report."""
    config = config if config is not None else LintConfig()
    sweep = (
        [os.path.join(config.repo_root, *config.src_root.split("/"))]
        if paths is None
        else list(paths)
    )
    findings = lint_paths(sweep, config, rules)
    chosen = list(rules) if rules is not None else all_rules()
    for rule in chosen:
        if rule.scope == "project":
            findings.extend(rule.check_project(config))
    return sorted(findings)
