"""Protocol-drift rules (PROTO0xx) — project scope.

The wire vocabulary lives in ``repro.service.api.MESSAGE_TYPES``.  The
invariant every PR has hand-enforced since PR 3: a verb exists only
when *all four* of its artefacts exist —

1. a message dataclass with ``to_body`` **and** ``from_body`` (the
   codec's encode/decode branches),
2. membership in the ``Message`` union,
3. a hypothesis strategy branch in the property suite
   (``tests/service/test_codec_properties.py``), and
4. a row/mention in the protocol document (``docs/SERVICE.md``).

These rules cross-check the registry against each artefact *statically*
(pure AST + text, no imports), so adding a verb without full coverage —
or deleting one strategy or codec branch — fails ``repro lint`` before
any soak test runs.  The tier-1 self-test
(``tests/lintkit/test_protocol_drift.py``) additionally pins the
AST-extracted registry against the imported runtime one.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.lintkit.rules import Finding, LintConfig, Rule, register


@dataclass
class ProtocolModel:
    """Everything the drift rules need, extracted from the API module."""

    path: str  #: repo-relative api module path
    #: slug -> message class name, in registry order.
    registry: Dict[str, str] = field(default_factory=dict)
    #: line of each slug's registry entry (for finding locations).
    slug_lines: Dict[str, int] = field(default_factory=dict)
    #: class name -> method names defined on it.
    class_methods: Dict[str, Set[str]] = field(default_factory=dict)
    #: class name -> definition line.
    class_lines: Dict[str, int] = field(default_factory=dict)
    #: members of the ``Message`` union annotation.
    union: Set[str] = field(default_factory=set)
    registry_line: int = 1
    error: Optional[str] = None

    @classmethod
    def parse(cls, source: str, relpath: str) -> "ProtocolModel":
        model = cls(path=relpath.replace(os.sep, "/"))
        try:
            tree = ast.parse(source, filename=relpath)
        except SyntaxError as exc:
            model.error = f"api module does not parse: {exc.msg}"
            return model
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                model.class_lines[node.name] = node.lineno
                model.class_methods[node.name] = {
                    item.name
                    for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                names = [t.id for t in targets if isinstance(t, ast.Name)]
                if "MESSAGE_TYPES" in names:
                    model.registry_line = node.lineno
                    model._read_registry(node.value)
                elif "Message" in names:
                    model._read_union(node.value)
        if not model.registry:
            model.error = "no MESSAGE_TYPES dict literal found"
        return model

    @classmethod
    def load(cls, config: LintConfig) -> "ProtocolModel":
        path = config.abspath(config.api_module)
        try:
            with open(path, "r", encoding="utf-8") as f:
                source = f.read()
        except OSError as exc:
            model = cls(path=config.api_module)
            model.error = f"cannot read api module: {exc}"
            return model
        return cls.parse(source, config.api_module)

    def _read_registry(self, value: ast.AST) -> None:
        if not isinstance(value, ast.Dict):
            self.error = "MESSAGE_TYPES is not a dict literal"
            return
        for key, val in zip(value.keys, value.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(val, ast.Name)
            ):
                self.registry[key.value] = val.id
                self.slug_lines[key.value] = key.lineno

    def _read_union(self, value: ast.AST) -> None:
        if isinstance(value, ast.Subscript):
            elts = (
                value.slice.elts
                if isinstance(value.slice, ast.Tuple)
                else [value.slice]
            )
            self.union = {e.id for e in elts if isinstance(e, ast.Name)}


def _read_text(config: LintConfig, relpath: str) -> Optional[str]:
    try:
        with open(config.abspath(relpath), "r", encoding="utf-8") as f:
            return f.read()
    except OSError:
        return None


class _ProtocolRule(Rule):
    """Shared plumbing: load the model once per rule invocation."""

    scope = "project"

    def check_project(self, config: LintConfig) -> Iterable[Finding]:
        model = ProtocolModel.load(config)
        if model.error is not None:
            return [self.finding(model.path, model.registry_line, model.error)]
        return list(self.check_model(model, config))

    def check_model(
        self, model: ProtocolModel, config: LintConfig
    ) -> Iterable[Finding]:
        raise NotImplementedError


@register
class CodecBranchRule(_ProtocolRule):
    id = "PROTO001"
    title = "registered verb lacks a codec encode/decode branch"
    severity = "error"
    rationale = """Every class in MESSAGE_TYPES must define both
    ``to_body`` (encode) and ``from_body`` (decode) in the api module.
    A missing half means one direction of the wire silently falls back
    to whatever a parent class does — the codec property suite would
    catch it at runtime, this catches it at lint time."""

    def check_model(
        self, model: ProtocolModel, config: LintConfig
    ) -> Iterable[Finding]:
        for slug, class_name in model.registry.items():
            line = model.slug_lines.get(slug, model.registry_line)
            methods = model.class_methods.get(class_name)
            if methods is None:
                yield self.finding(
                    model.path,
                    line,
                    f"verb `{slug}` maps to `{class_name}`, which is not "
                    "defined in the api module",
                )
                continue
            for required in ("to_body", "from_body"):
                if required not in methods:
                    yield self.finding(
                        model.path,
                        model.class_lines.get(class_name, line),
                        f"message class `{class_name}` (verb `{slug}`) has "
                        f"no `{required}` method — codec branch missing",
                    )


@register
class MessageUnionRule(_ProtocolRule):
    id = "PROTO002"
    title = "registry and Message union disagree"
    severity = "error"
    rationale = """The ``Message`` union is the typed face of the
    registry: a class in one but not the other means a verb the type
    system doesn't know about, or a type the wire can never carry."""

    def check_model(
        self, model: ProtocolModel, config: LintConfig
    ) -> Iterable[Finding]:
        registered = set(model.registry.values())
        for slug, class_name in model.registry.items():
            if class_name not in model.union:
                yield self.finding(
                    model.path,
                    model.slug_lines.get(slug, model.registry_line),
                    f"`{class_name}` (verb `{slug}`) is registered but "
                    "missing from the Message union",
                )
        for class_name in sorted(model.union - registered):
            yield self.finding(
                model.path,
                model.registry_line,
                f"`{class_name}` is in the Message union but not in "
                "MESSAGE_TYPES",
            )


def _strategy_artifacts(source: str, relpath: str):
    """From the property suite: (slugs in sampled_from lists inside
    ``wire_messages``, class names referenced as expressions, error)."""
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return set(), set(), f"strategy suite does not parse: {exc.msg}"
    sampled: Set[str] = set()
    referenced: Set[str] = set()
    wire_fn = None
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "wire_messages":
            wire_fn = node
            break
    if wire_fn is None:
        return set(), set(), "no `wire_messages` strategy function found"
    for node in ast.walk(wire_fn):
        if isinstance(node, ast.Call):
            func = node.func
            attr = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if attr == "sampled_from":
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                        sampled.add(sub.value)
    # Name *expressions* only — imports don't count, so deleting a
    # construction branch genuinely un-references its class.
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            referenced.add(node.id)
    return sampled, referenced, None


@register
class StrategyCoverageRule(_ProtocolRule):
    id = "PROTO003"
    title = "verb missing from the hypothesis property suite"
    severity = "error"
    rationale = """Every verb must be drawn by the ``wire_messages``
    strategy (its slug in a ``sampled_from`` list **and** its class
    constructed in a branch), so the round-trip/desync properties cover
    it.  A verb the fuzzer never generates is a verb whose codec is
    untested."""

    def check_model(
        self, model: ProtocolModel, config: LintConfig
    ) -> Iterable[Finding]:
        source = _read_text(config, config.strategy_test)
        if source is None:
            yield self.finding(
                config.strategy_test,
                1,
                f"property suite {config.strategy_test} not found",
            )
            return
        sampled, referenced, error = _strategy_artifacts(
            source, config.strategy_test
        )
        if error is not None:
            yield self.finding(config.strategy_test, 1, error)
            return
        for slug, class_name in model.registry.items():
            if slug not in sampled:
                yield self.finding(
                    config.strategy_test,
                    1,
                    f"verb `{slug}` is not in the wire_messages sampled_from "
                    "list — the property suite never generates it",
                )
            if class_name not in referenced:
                yield self.finding(
                    config.strategy_test,
                    1,
                    f"message class `{class_name}` (verb `{slug}`) is never "
                    "constructed in the property suite — strategy branch "
                    "missing",
                )


@register
class DocCoverageRule(_ProtocolRule):
    id = "PROTO004"
    title = "verb missing from the protocol document"
    severity = "error"
    rationale = """docs/SERVICE.md is the operator-facing contract:
    every wire verb must appear there by its exact slug.  A verb the
    document doesn't name is a verb peers will implement from guesswork."""

    def check_model(
        self, model: ProtocolModel, config: LintConfig
    ) -> Iterable[Finding]:
        text = _read_text(config, config.service_doc)
        if text is None:
            yield self.finding(
                config.service_doc, 1, f"{config.service_doc} not found"
            )
            return
        for slug in model.registry:
            if slug not in text:
                yield self.finding(
                    config.service_doc,
                    1,
                    f"verb `{slug}` is not documented in {config.service_doc}",
                )


@register
class BinaryCodecRule(_ProtocolRule):
    id = "PROTO005"
    title = "v2 binary codec branch is lopsided or unregistered"
    severity = "error"
    rationale = """The v2 binary codec is opt-in per class: a message
    that defines ``to_body_v2`` **and** ``from_body_v2`` travels as
    columnar blocks, everything else rides inside the frame header.
    Half a pair means one wire direction silently falls back to the
    JSON body — frames the class itself cannot decode.  And a pair no
    frame can reach — the class neither registered in MESSAGE_TYPES nor
    used as a payload inside a reachable class's v2 branch (the
    ``PublishedPiece`` pattern) — is dead codec code."""

    _PAIR = ("to_body_v2", "from_body_v2")

    @staticmethod
    def _v2_references(source: str) -> Dict[str, Set[str]]:
        """class name -> names referenced inside its v2 codec methods."""
        refs: Dict[str, Set[str]] = {}
        try:
            tree = ast.parse(source)
        except SyntaxError:
            return refs
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            names: Set[str] = set()
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name in BinaryCodecRule._PAIR
                ):
                    names |= {
                        sub.id
                        for sub in ast.walk(item)
                        if isinstance(sub, ast.Name)
                    }
            refs[node.name] = names
        return refs

    def check_model(
        self, model: ProtocolModel, config: LintConfig
    ) -> Iterable[Finding]:
        paired = {
            class_name
            for class_name, methods in model.class_methods.items()
            if all(m in methods for m in self._PAIR)
        }
        # Reachability: registered verbs, plus (transitively) any paired
        # class a reachable class's v2 branch constructs as a payload.
        source = _read_text(config, config.api_module) or ""
        refs = self._v2_references(source)
        reachable = set(model.registry.values())
        frontier = True
        while frontier:
            frontier = False
            for class_name in paired - reachable:
                if any(
                    class_name in refs.get(parent, ())
                    for parent in reachable & paired
                ):
                    reachable.add(class_name)
                    frontier = True
        for class_name, methods in model.class_methods.items():
            present = [m for m in self._PAIR if m in methods]
            if not present:
                continue
            line = model.class_lines.get(class_name, 1)
            if len(present) == 1:
                missing = next(m for m in self._PAIR if m not in methods)
                yield self.finding(
                    model.path,
                    line,
                    f"message class `{class_name}` defines `{present[0]}` "
                    f"but not `{missing}` — half a v2 codec branch means "
                    "one wire direction falls back to the JSON body",
                )
            elif class_name not in reachable:
                yield self.finding(
                    model.path,
                    line,
                    f"`{class_name}` carries a v2 codec branch "
                    "(to_body_v2/from_body_v2) but is neither registered in "
                    "MESSAGE_TYPES nor used as a payload by a registered "
                    "class's v2 branch — no frame can ever reach it",
                )


def protocol_rules() -> List[Rule]:
    """The drift family, for callers that run it in isolation (the
    tier-1 self-test and the mutation checks)."""
    from repro.lintkit.rules import all_rules

    return [rule for rule in all_rules() if rule.id.startswith("PROTO")]
