"""Determinism rules (DET0xx).

The repository's core guarantee is that published datasets are
byte-identical across every execution path — serial, process pools,
async, sharded, remote, elastic churn, and streaming.  That only holds
while every random draw derives from ``stable_user_seed`` via
:mod:`repro.rng`, no publish-path code reads the wall clock, and
nothing enumerates a ``set`` into ordered output.  These rules make
each of those hand-enforced habits a machine-checked invariant.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Tuple

from repro.lintkit.rules import Finding, LintConfig, ModuleInfo, Rule, register

#: Stdlib-``random`` call roots: *any* function on the module-level
#: singleton shares one global, scheduling-ordered state.
_GLOBAL_RANDOM_ROOTS = ("random.",)

#: Legacy numpy global-state API (``np.random.rand`` & co.).  The
#: Generator API (``default_rng``) is fine *when seeded*.
_NUMPY_GLOBAL_PREFIX = "numpy.random."
_NUMPY_GENERATOR_CTORS = frozenset(
    {"numpy.random.default_rng", "numpy.random.Generator", "numpy.random.SeedSequence"}
)
#: Non-call uses of numpy.random we must not flag: type annotations and
#: isinstance checks mention numpy.random.Generator without drawing.
_NUMPY_SAFE = frozenset(
    {
        "numpy.random.Generator",
        "numpy.random.BitGenerator",
        "numpy.random.SeedSequence",
    }
)

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_OS_ENTROPY = frozenset({"os.urandom", "uuid.uuid4", "uuid.uuid1"})
#: ``secrets`` is *deliberate* unpredictability (auth nonces) — flagged
#: only on the publish path, where unpredictability breaks byte-identity.
_SECRETS_PREFIX = "secrets."

#: Consumers whose argument order becomes visible output ordering.
_ORDER_SENSITIVE_CONSUMERS = frozenset(
    {"list", "tuple", "enumerate", "iter", "next", "zip", "map", "filter"}
)
#: Consumers that erase iteration order (safe to feed a set).
_ORDER_ERASING_CONSUMERS = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"}
)

#: ``%``/``format`` float conversions that do not round-trip float64.
_LOSSY_PERCENT = ("%f", "%e", "%g", "%.")


def _first_arg_is_seed(node: ast.Call) -> bool:
    """True when a Generator constructor received a non-``None`` seed."""
    if node.args:
        arg = node.args[0]
        return not (isinstance(arg, ast.Constant) and arg.value is None)
    for keyword in node.keywords:
        if keyword.arg in ("seed", None):
            value = keyword.value
            return not (isinstance(value, ast.Constant) and value.value is None)
    return False


@register
class UnseededRandomRule(Rule):
    id = "DET001"
    title = "unseeded or global-state RNG call"
    severity = "error"
    rationale = """Every draw must derive from an explicit seed through
    repro/rng.py so the same user protects identically on every
    executor.  The stdlib ``random`` module and numpy's legacy
    ``np.random.*`` functions share hidden global state whose sequence
    depends on import and scheduling order, and an unseeded
    ``default_rng()`` pulls OS entropy."""

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterable[Finding]:
        if module.relpath == config.rng_module:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve(node.func)
            if name is None:
                continue
            if name.startswith(_GLOBAL_RANDOM_ROOTS) and name != "random.Random":
                yield self.finding(
                    module.relpath,
                    node.lineno,
                    f"call to stdlib global RNG `{name}`; derive a seeded "
                    "generator via repro.rng.make_rng/stable_user_seed instead",
                )
            elif name == "random.Random" and not _first_arg_is_seed(node):
                yield self.finding(
                    module.relpath,
                    node.lineno,
                    "`random.Random()` without a seed draws OS entropy; pass "
                    "an explicit seed",
                )
            elif name in _NUMPY_GENERATOR_CTORS:
                if name == "numpy.random.default_rng" and not _first_arg_is_seed(
                    node
                ):
                    yield self.finding(
                        module.relpath,
                        node.lineno,
                        "`default_rng()` without a seed draws OS entropy; "
                        "thread a seed (repro.rng.make_rng accepts one)",
                    )
            elif name.startswith(_NUMPY_GLOBAL_PREFIX) and name not in _NUMPY_SAFE:
                yield self.finding(
                    module.relpath,
                    node.lineno,
                    f"legacy numpy global-state RNG `{name}`; use a seeded "
                    "numpy.random.Generator from repro.rng instead",
                )


@register
class WallClockRule(Rule):
    id = "DET002"
    title = "wall clock read on the publish path"
    severity = "error"
    rationale = """Publish-path code (core, lppm, attacks, stream,
    synth, datasets, poi, geo, metrics, analysis, experiments) must be a
    pure function of corpus + seed: a ``time.time()`` or
    ``datetime.now()`` that reaches window assignment, seeding, or any
    published value makes two identical runs diverge.  Durations belong
    to ``time.monotonic()`` in the service layer; timestamps travel in
    the data."""

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterable[Finding]:
        if not config.in_publish_path(module.relpath):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve(node.func)
            if name in _WALL_CLOCK:
                yield self.finding(
                    module.relpath,
                    node.lineno,
                    f"wall-clock read `{name}` on the publish path; thread "
                    "timestamps through the data (or keep timing in the "
                    "service/bench layer)",
                )


@register
class OsEntropyRule(Rule):
    id = "DET003"
    title = "operating-system entropy source"
    severity = "error"
    rationale = """``os.urandom``/``uuid.uuid4`` are unseedable by
    construction, so any value they influence can never be reproduced.
    ``secrets`` is allowed off the publish path (auth nonces are
    *supposed* to be unpredictable) but never on it."""

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve(node.func)
            if name is None:
                continue
            if name in _OS_ENTROPY:
                yield self.finding(
                    module.relpath,
                    node.lineno,
                    f"unseedable entropy source `{name}`; derive ids and "
                    "draws from the seeded stream",
                )
            elif name.startswith(_SECRETS_PREFIX) and config.in_publish_path(
                module.relpath
            ):
                yield self.finding(
                    module.relpath,
                    node.lineno,
                    f"`{name}` on the publish path; cryptographic "
                    "unpredictability and byte-identical replay cannot mix",
                )


def _is_set_expr(node: ast.AST, module: ModuleInfo) -> bool:
    """Does *node* evaluate to a ``set``/``frozenset``?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = module.resolve(node.func)
        if name in ("set", "frozenset"):
            return True
        # set algebra helpers that return sets
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return _is_set_expr(node.func.value, module)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, module) or _is_set_expr(node.right, module)
    return False


@register
class SetIterationRule(Rule):
    id = "DET004"
    title = "set iteration feeding ordered output"
    severity = "error"
    rationale = """``for x in {...}`` (and ``list(a_set)``) enumerate
    hash order, which varies per process under PYTHONHASHSEED — two
    workers fanning the same users out of a set publish in different
    orders.  Wrap the set in ``sorted(...)`` (or consume it with an
    order-erasing reduction like ``len``/``sum``/``min``)."""

    def _consumed_order_safely(self, node: ast.AST, parent: ast.AST) -> bool:
        return (
            isinstance(parent, ast.Call)
            and bool(parent.args)
            and parent.args[0] is node
        )

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            iters: Iterator[Tuple[ast.AST, int]] = iter(())
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters = iter([(node.iter, node.lineno)])
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                iters = iter(
                    (gen.iter, gen.iter.lineno) for gen in node.generators
                )
            elif isinstance(node, ast.Call):
                name = module.resolve(node.func)
                if name in _ORDER_SENSITIVE_CONSUMERS and node.args:
                    iters = iter([(node.args[0], node.args[0].lineno)])
            for expr, lineno in iters:
                if _is_set_expr(expr, module):
                    yield self.finding(
                        module.relpath,
                        lineno,
                        "iterating a set in an order-sensitive position; "
                        "hash order varies per process — wrap in sorted(...)",
                    )


def _lossy_format_spec(spec: str) -> bool:
    """True for precision-truncating float specs like ``.3f``/``.2e``."""
    return "." in spec and spec.rstrip("}").endswith(("f", "e", "g", "F", "E", "G"))


def _format_spec_text(node: ast.FormattedValue) -> Optional[str]:
    if node.format_spec is None:
        return None
    parts = []
    for value in getattr(node.format_spec, "values", []):
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            parts.append(value.value)
    return "".join(parts)


@register
class LossyFloatFormatRule(Rule):
    id = "DET005"
    title = "lossy float formatting near the wire codec"
    severity = "error"
    rationale = """The codec's byte-identity contract rests on Python's
    shortest-repr float encoding, which round-trips float64 exactly.  A
    ``%.3f``/``f"{x:.2f}"`` anywhere in the service or stream layers is
    one copy-paste away from a wire body, and a truncated coordinate
    de-syncs every downstream fingerprint.  Human-facing truncation
    belongs in the CLI/report layers."""

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterable[Finding]:
        if not config.in_codec_path(module.relpath):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.FormattedValue):
                spec = _format_spec_text(node)
                if spec and _lossy_format_spec(spec):
                    yield self.finding(
                        module.relpath,
                        node.lineno,
                        f"lossy float format spec `:{spec}` in a codec-layer "
                        "module; wire values must use shortest-repr encoding",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
                left = node.left
                if isinstance(left, ast.Constant) and isinstance(left.value, str):
                    if any(token in left.value for token in _LOSSY_PERCENT):
                        yield self.finding(
                            module.relpath,
                            node.lineno,
                            "lossy %-style float formatting in a codec-layer "
                            "module; wire values must use shortest-repr "
                            "encoding",
                        )
