"""``repro lint`` — the determinism / concurrency / protocol linter.

A stdlib-only static-analysis pass over the repository's own source
tree that machine-checks the two invariants every PR since the seed has
staked correctness on:

* **Determinism** — published datasets must be byte-identical across
  the serial/process/async/sharded/remote/elastic/stream paths, so no
  publish-path code may draw unseeded randomness, read the wall clock,
  enumerate a ``set`` into ordered output, or format floats lossily
  near the wire codec (:mod:`repro.lintkit.determinism`).
* **Wire-protocol discipline** — every verb in the
  ``repro.service.api.MESSAGE_TYPES`` registry must keep full
  codec/strategy/docs coverage: ``to_body``/``from_body`` branches, a
  hypothesis strategy in the property suite, and a row in
  docs/SERVICE.md (:mod:`repro.lintkit.protocol`).

Plus **concurrency hygiene**: instance state mutated from thread
targets must hold a lock, and asyncio coroutines must not call
blocking I/O (:mod:`repro.lintkit.concurrency`).

Findings carry a rule id, severity, and ``file:line``; per-line
suppression is ``# lint: allow(<rule>)`` and the committed baseline
(``.github/lint_baseline.json``) may only shrink.  See docs/LINT.md.
"""

from repro.lintkit.rules import (  # noqa: F401
    Finding,
    LintConfig,
    ModuleInfo,
    Rule,
    all_rules,
    lint_paths,
    lint_project,
    lint_source,
    rule_catalogue,
)
from repro.lintkit.report import (  # noqa: F401
    Baseline,
    format_findings,
    gate,
)

# Importing the rule modules registers their rules.
from repro.lintkit import concurrency, determinism, protocol  # noqa: F401, E402

__all__ = [
    "Finding",
    "LintConfig",
    "ModuleInfo",
    "Rule",
    "Baseline",
    "all_rules",
    "format_findings",
    "gate",
    "lint_paths",
    "lint_project",
    "lint_source",
    "rule_catalogue",
]
