"""Finding reports and the shrink-only baseline gate.

The baseline file (``.github/lint_baseline.json``) is the escape hatch
that lets the linter land on a tree with pre-existing findings without
blocking CI: known findings are recorded once, and from then on the
gate enforces two directions —

* **no new findings** — anything not in the baseline fails the run;
* **shrink only** — a baseline entry whose finding no longer fires is
  *stale* and (under ``--check-baseline``, the CI mode) also fails the
  run until the entry is deleted.  The file can therefore only ever get
  smaller, never quietly absorb regressions.

This repository's committed baseline is **empty**: every true finding
the rules surfaced was fixed (or explicitly ``# lint: allow``-ed with a
justification) in the PR that introduced the linter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.lintkit.rules import Finding

BASELINE_SCHEMA = "lint-baseline"
REPORT_SCHEMA = "lint-report"

#: Default committed baseline location, repo-relative.
DEFAULT_BASELINE = ".github/lint_baseline.json"


@dataclass
class Baseline:
    """The committed set of tolerated finding keys."""

    keys: Set[str] = field(default_factory=set)
    #: Raw entries, kept for stale-entry reporting.
    entries: List[Dict[str, object]] = field(default_factory=list)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, "r", encoding="utf-8") as f:
                data = json.load(f)
        except FileNotFoundError:
            return cls()
        if data.get("schema") != BASELINE_SCHEMA:
            raise ValueError(
                f"{path} is not a lint baseline (schema "
                f"{data.get('schema')!r}, expected {BASELINE_SCHEMA!r})"
            )
        entries = list(data.get("findings", []))
        keys = {
            f"{e['rule']}@{e['path']}:{int(e['line'])}" for e in entries
        }
        return cls(keys=keys, entries=entries)

    @staticmethod
    def write(path: str, findings: Sequence[Finding]) -> None:
        payload = {
            "schema": BASELINE_SCHEMA,
            "findings": [f.to_dict() for f in sorted(findings)],
        }
        with open(path, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")


@dataclass
class GateResult:
    """Outcome of comparing a run against the baseline."""

    findings: List[Finding]
    new: List[Finding]
    baselined: List[Finding]
    stale_keys: List[str]

    def ok(self, check_baseline: bool = False) -> bool:
        if self.new:
            return False
        if check_baseline and self.stale_keys:
            return False
        return True


def gate(findings: Sequence[Finding], baseline: Optional[Baseline] = None) -> GateResult:
    """Split *findings* into new vs baselined and spot stale entries."""
    baseline = baseline if baseline is not None else Baseline()
    new: List[Finding] = []
    baselined: List[Finding] = []
    seen_keys: Set[str] = set()
    for finding in sorted(findings):
        seen_keys.add(finding.key())
        (baselined if finding.key() in baseline.keys else new).append(finding)
    stale = sorted(baseline.keys - seen_keys)
    return GateResult(
        findings=sorted(findings), new=new, baselined=baselined, stale_keys=stale
    )


def format_findings(
    findings: Sequence[Finding], fmt: str = "text"
) -> str:
    """Render findings as ``text`` (humans), ``ci`` (GitHub workflow
    annotations), or ``json`` (machine report)."""
    ordered = sorted(findings)
    if fmt == "json":
        by_rule: Dict[str, int] = {}
        for finding in ordered:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        return json.dumps(
            {
                "schema": REPORT_SCHEMA,
                "total": len(ordered),
                "by_rule": by_rule,
                "findings": [f.to_dict() for f in ordered],
            },
            indent=2,
            sort_keys=True,
        )
    if fmt == "ci":
        lines = [
            "::{level} file={path},line={line},title={rule}::{message}".format(
                level="error" if f.severity == "error" else "warning",
                path=f.path,
                line=f.line,
                rule=f.rule,
                message=f.message,
            )
            for f in ordered
        ]
        return "\n".join(lines)
    if fmt == "text":
        lines = [
            f"{f.location}: {f.rule} {f.severity}: {f.message}" for f in ordered
        ]
        return "\n".join(lines)
    raise ValueError(f"unknown lint format {fmt!r}; choose text, ci, or json")
