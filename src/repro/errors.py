"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single exception type at API boundaries while still
being able to discriminate finer-grained failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidRecordError(ReproError, ValueError):
    """A spatio-temporal record has out-of-range coordinates or timestamp."""


class EmptyTraceError(ReproError, ValueError):
    """An operation requiring a non-empty mobility trace received an empty one."""


class UnsortedTraceError(ReproError, ValueError):
    """A trace's records are not in non-decreasing timestamp order."""


class UnknownUserError(ReproError, KeyError):
    """A user id was requested that does not exist in the dataset."""


class DuplicateUserError(ReproError, ValueError):
    """Two traces with the same user id were inserted into a dataset."""


class NotFittedError(ReproError, RuntimeError):
    """An attack was asked to re-identify before being trained on background knowledge."""


class ConfigurationError(ReproError, ValueError):
    """An LPPM, attack, or experiment was configured with invalid parameters."""


class ProtectionFailedError(ReproError, RuntimeError):
    """MooD could not protect a trace and erasure was disallowed by the caller."""


class ProtocolError(ReproError, ValueError):
    """A service message violates the wire protocol (bad JSON, version, or schema)."""


class ServiceError(ReproError, RuntimeError):
    """The protection service answered a request with an error envelope."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class TransportError(ServiceError):
    """The connection to a service endpoint failed (refused, reset, timed
    out, or desynchronised) — as opposed to the service *answering* with
    an error envelope.  Transport failures are retriable on another
    endpoint; envelope errors are deterministic and are not."""

    def __init__(self, message: str) -> None:
        super().__init__("transport", message)


class StreamError(ReproError, ValueError):
    """A streaming-ingestion request violates the session contract
    (unknown session, ordinal gap, out-of-order timestamps, double
    open).  Deterministic caller errors: the service answers them with a
    ``bad_request`` envelope and the session state is left unchanged."""


class AuthenticationError(ServiceError):
    """The service rejected the peer's credentials (or their absence).

    Deliberately **not** a :class:`TransportError`: a misconfigured key
    fails the same way on every endpoint and every retry, so cluster
    clients treat it as fatal instead of burning their retry budget."""

    def __init__(self, message: str) -> None:
        super().__init__("auth", message)
