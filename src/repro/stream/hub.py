"""Stream session manager: bounded buffers, watermarks, overflow policy.

The :class:`StreamHub` owns every open stream session of a
:class:`~repro.service.api.ProtectionService`.  It is deliberately
synchronous and lock-free — the service calls it under its own state
lock, on the same pool threads that run the batch verbs — and keyed by
user id, so a session survives a client reconnect and can be resumed
from its watermark.

Every buffer in the path is bounded:

* the **open window** holds at most ``max_pending_records`` records;
  when a batch would exceed the bound the configured *overflow policy*
  decides: ``block`` rejects the rest of the batch (the client retries),
  ``shed`` drops the oldest buffered window outright (the watermark
  advances over the shed records — they are handled, just not
  published), ``degrade`` force-closes the window and protects it with
  the cheapest single LPPM instead of the full MooD cascade;
* the **piece log** (windows protected but not yet acknowledged by the
  client) holds at most ``max_unacked_windows`` entries; beyond that the
  oldest entries are dropped from the *log only* — their pieces are
  already durable in the collection server, the client just can no
  longer fetch copies over the stream.

Each policy decision is counted under a machine-readable reason code
(``REASON_*``) surfaced verbatim in the service's ``stats`` verb, so an
operator can see *why* load was shed, not just that it was.

Watermark contract: ``watermark`` is the highest record ordinal ``h``
such that every record ``0..h`` is **protected and durable** — its
window went through the cascade (or was deliberately shed/degraded) and
the resulting pieces were ingested into the collection server.  Records
in the open window are not durable.  A reconnecting client resends from
``watermark + 1``; the hub silently skips ordinals it already holds, so
resumption is loss- and duplication-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.engine import DEFAULT_CHUNK_S, ProtectedPiece
from repro.core.trace import Trace
from repro.errors import ConfigurationError, StreamError
from repro.metrics.distortion import spatial_temporal_distortion
from repro.rng import make_rng, stable_user_seed
from repro.stream.window import (
    DEFAULT_GAP_S,
    WINDOW_KINDS,
    ClosedWindow,
    WindowAssembler,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.proxy import MoodProxy

#: Declared overflow policies for the open-window buffer.
OVERFLOW_POLICIES = ("block", "shed", "degrade")

#: Reason codes surfaced in ``stats`` (machine-readable, stable).
REASON_BLOCKED = "backpressure.buffer_full"
REASON_SHED = "overflow.shed_oldest_window"
REASON_DEGRADED = "overflow.degrade_cheap_lppm"
REASON_PIECE_LOG_SHED = "overflow.piece_log_shed"


@dataclass(frozen=True)
class StreamConfig:
    """Server-side streaming defaults (``ProtectionConfig.stream``)."""

    window: str = "tumbling"
    window_s: float = DEFAULT_CHUNK_S
    gap_s: float = DEFAULT_GAP_S
    overflow: str = "block"
    max_pending_records: int = 100_000
    max_unacked_windows: int = 64
    #: Fold each closed raw window into the attacks' fitted state via
    #: :meth:`ProtectionEngine.refit`.  Off by default: refitting
    #: changes attack verdicts, which breaks stream-vs-batch
    #: byte-identity — enable it only for genuinely online deployments.
    refit: bool = False

    def __post_init__(self) -> None:
        if self.window not in WINDOW_KINDS:
            raise ConfigurationError(
                f"stream window must be one of {WINDOW_KINDS}, got {self.window!r}"
            )
        if self.overflow not in OVERFLOW_POLICIES:
            raise ConfigurationError(
                f"stream overflow must be one of {OVERFLOW_POLICIES}, "
                f"got {self.overflow!r}"
            )
        if self.window_s <= 0:
            raise ConfigurationError(f"window_s must be positive, got {self.window_s}")
        if self.gap_s <= 0:
            raise ConfigurationError(f"gap_s must be positive, got {self.gap_s}")
        if self.max_pending_records < 1:
            raise ConfigurationError(
                f"max_pending_records must be >= 1, got {self.max_pending_records}"
            )
        if self.max_unacked_windows < 1:
            raise ConfigurationError(
                f"max_unacked_windows must be >= 1, got {self.max_unacked_windows}"
            )

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StreamConfig":
        known = {
            "window",
            "window_s",
            "gap_s",
            "overflow",
            "max_pending_records",
            "max_unacked_windows",
            "refit",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown stream config keys {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs: Dict[str, Any] = dict(data)
        if "window" in kwargs:
            kwargs["window"] = str(kwargs["window"])
        if "window_s" in kwargs:
            kwargs["window_s"] = float(kwargs["window_s"])
        if "gap_s" in kwargs:
            kwargs["gap_s"] = float(kwargs["gap_s"])
        if "overflow" in kwargs:
            kwargs["overflow"] = str(kwargs["overflow"])
        if "max_pending_records" in kwargs:
            kwargs["max_pending_records"] = int(kwargs["max_pending_records"])
        if "max_unacked_windows" in kwargs:
            kwargs["max_unacked_windows"] = int(kwargs["max_unacked_windows"])
        if "refit" in kwargs:
            kwargs["refit"] = bool(kwargs["refit"])
        return cls(**kwargs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "window": self.window,
            "window_s": self.window_s,
            "gap_s": self.gap_s,
            "overflow": self.overflow,
            "max_pending_records": self.max_pending_records,
            "max_unacked_windows": self.max_unacked_windows,
            "refit": self.refit,
        }


@dataclass(frozen=True)
class IngestOutcome:
    """Result of one ``stream_record`` batch."""

    accepted: int
    next_ordinal: int
    watermark: int
    status: str = "ok"  # "ok" | "blocked" | "shed" | "degraded"
    reason: str = ""


@dataclass(frozen=True)
class FlushOutcome:
    """Result of one ``stream_flush``: the durable frontier + pieces."""

    watermark: int
    pieces: Tuple[ProtectedPiece, ...]
    erased_records: int
    #: Piece-log entries dropped since the session opened (the pieces
    #: themselves stayed durable server-side).
    pieces_dropped: int


@dataclass(frozen=True)
class CloseOutcome:
    """Final accounting of a closed session."""

    watermark: int
    records_in: int
    records_shed: int
    erased_records: int
    pieces_published: int
    windows_closed: int


@dataclass
class StreamSession:
    """Mutable per-user stream state (owned by the hub)."""

    user_id: str
    assembler: WindowAssembler
    overflow: str
    max_pending_records: int
    max_unacked_windows: int
    next_ordinal: int = 0
    watermark: int = -1
    chunk_index: int = 0
    records_in: int = 0
    records_duplicate: int = 0
    records_shed: int = 0
    erased_records: int = 0
    pieces_published: int = 0
    windows_closed: int = 0
    windows_shed: int = 0
    windows_degraded: int = 0
    pieces_dropped: int = 0
    #: ``(last_ordinal, pieces)`` per protected window, pruned on ack.
    unacked: List[Tuple[int, Tuple[ProtectedPiece, ...]]] = field(default_factory=list)


class StreamHub:
    """All open stream sessions of one service deployment.

    ``proxy`` runs the cascade (same engine, same session pseudonyms as
    the batch verbs — the backbone of stream-vs-batch byte-identity);
    ``sink`` makes published pieces durable (the service passes
    ``CollectionServer.receive``).  Not thread-safe by design: callers
    serialise through the service state lock.
    """

    def __init__(
        self,
        proxy: "MoodProxy",
        sink: Optional[Callable[[Trace], None]] = None,
        config: Optional[StreamConfig] = None,
    ) -> None:
        self.proxy = proxy
        self.sink = sink
        self.config = config if config is not None else StreamConfig()
        self.sessions: Dict[str, StreamSession] = {}
        self.sessions_opened = 0
        self.sessions_resumed = 0
        self.sessions_closed = 0
        self.records_in = 0
        self.records_duplicate = 0
        self.records_shed = 0
        self.windows_closed = 0
        self.windows_shed = 0
        self.windows_degraded = 0
        self.pieces_dropped = 0
        #: reason code -> number of policy decisions taken under it.
        self.overflow_events: Dict[str, int] = {}

    # -- session lifecycle -------------------------------------------------

    def open(
        self,
        user_id: str,
        window: Optional[str] = None,
        window_s: Optional[float] = None,
        gap_s: Optional[float] = None,
        resume: bool = False,
    ) -> Tuple[StreamSession, bool]:
        """Open (or with ``resume=True`` re-attach to) a user's session."""
        existing = self.sessions.get(user_id)
        if existing is not None:
            if not resume:
                raise StreamError(
                    f"stream of {user_id!r} is already open; pass resume=true "
                    "to re-attach or close it first"
                )
            self.sessions_resumed += 1
            return existing, True
        if resume:
            # Nothing to resume: fall through to a fresh session (the
            # client's watermark floor is -1 either way).
            pass
        cfg = self.config
        session = StreamSession(
            user_id=user_id,
            assembler=WindowAssembler(
                user_id,
                kind=window if window is not None else cfg.window,
                window_s=window_s if window_s is not None else cfg.window_s,
                gap_s=gap_s if gap_s is not None else cfg.gap_s,
            ),
            overflow=cfg.overflow,
            max_pending_records=cfg.max_pending_records,
            max_unacked_windows=cfg.max_unacked_windows,
        )
        self.sessions[user_id] = session
        self.sessions_opened += 1
        return session, False

    def _session(self, user_id: str) -> StreamSession:
        session = self.sessions.get(user_id)
        if session is None:
            raise StreamError(
                f"no open stream for {user_id!r}; send stream_open first"
            )
        return session

    # -- record path -------------------------------------------------------

    def ingest(
        self, user_id: str, records: Sequence[Sequence[float]]
    ) -> IngestOutcome:
        """Feed one batch of ``(ordinal, t, lat, lng)`` records.

        Consumes records in order until done or until the overflow
        policy says ``block``; duplicates (ordinals below the session's
        frontier, e.g. a resend after resume) are skipped silently.
        """
        session = self._session(user_id)
        accepted = 0
        status = "ok"
        reason = ""
        for row in records:
            ordinal, t, lat, lng = int(row[0]), float(row[1]), float(row[2]), float(row[3])
            if ordinal < session.next_ordinal:
                session.records_duplicate += 1
                self.records_duplicate += 1
                accepted += 1
                continue
            if ordinal > session.next_ordinal:
                raise StreamError(
                    f"ordinal gap in stream of {user_id!r}: expected "
                    f"{session.next_ordinal}, got {ordinal}"
                )
            if session.assembler.pending >= session.max_pending_records:
                action, action_reason = self._overflow(session)
                status, reason = action, action_reason
                if action == "blocked":
                    break
            closed = session.assembler.add(ordinal, t, lat, lng)
            if closed is not None:
                self._protect_window(session, closed)
            session.next_ordinal = ordinal + 1
            session.records_in += 1
            self.records_in += 1
            accepted += 1
        return IngestOutcome(
            accepted=accepted,
            next_ordinal=session.next_ordinal,
            watermark=session.watermark,
            status=status,
            reason=reason,
        )

    def _overflow(self, session: StreamSession) -> Tuple[str, str]:
        """Apply the session's overflow policy to a full open window."""
        if session.overflow == "block":
            self._count(REASON_BLOCKED)
            return "blocked", REASON_BLOCKED
        if session.overflow == "shed":
            window = session.assembler.close_open()
            if window is not None:
                session.records_shed += len(window)
                self.records_shed += len(window)
                session.windows_shed += 1
                self.windows_shed += 1
                # Shed records are handled (deliberately unpublished):
                # the watermark advances so the client never resends them.
                session.watermark = window.last_ordinal
            self._count(REASON_SHED)
            return "shed", REASON_SHED
        # degrade: force-close and protect with the cheapest single LPPM.
        window = session.assembler.close_open()
        if window is not None:
            self._protect_window(session, window, degraded=True)
        self._count(REASON_DEGRADED)
        return "degraded", REASON_DEGRADED

    def _count(self, reason: str) -> None:
        self.overflow_events[reason] = self.overflow_events.get(reason, 0) + 1

    def _protect_window(
        self, session: StreamSession, window: ClosedWindow, degraded: bool = False
    ) -> None:
        """Run one closed window through the cascade (or the cheap path)
        and make its pieces durable; advances the watermark."""
        if degraded:
            pieces, erased = self._degrade(window)
            session.windows_degraded += 1
            self.windows_degraded += 1
        else:
            from repro.service.client import UploadChunk  # lazy: avoids an import cycle

            result = self.proxy.protect_chunk(
                UploadChunk(session.user_id, session.chunk_index, window.trace)
            )
            pieces, erased = tuple(result.pieces), result.erased_records
        session.chunk_index += 1
        session.windows_closed += 1
        self.windows_closed += 1
        session.erased_records += erased
        if self.sink is not None:
            for piece in pieces:
                self.sink(piece.published)
        session.pieces_published += len(pieces)
        session.unacked.append((window.last_ordinal, pieces))
        while len(session.unacked) > session.max_unacked_windows:
            session.unacked.pop(0)
            session.pieces_dropped += 1
            self.pieces_dropped += 1
            self._count(REASON_PIECE_LOG_SHED)
        session.watermark = window.last_ordinal
        if self.config.refit:
            self._refit(window)

    def _degrade(
        self, window: ClosedWindow
    ) -> Tuple[Tuple[ProtectedPiece, ...], int]:
        """Cheapest-LPPM fallback: first single mechanism, no search.

        The window is published after one obfuscation pass regardless of
        attack verdicts — overload trades privacy search for liveness,
        and the ``degraded:`` mechanism prefix makes that visible in
        every readout downstream.
        """
        engine = self.proxy.engine
        if not engine.singles:
            return (), len(window)
        mech = engine.singles[0]
        trace = window.trace
        # Exact repr: a truncated start time would collide windows that
        # open less than a second apart, seeding them identically.
        rng = make_rng(
            stable_user_seed(
                engine.seed,
                f"{trace.user_id}|{mech.name}|{trace.start_time()!r}|{len(trace)}",
            )
        )
        published = mech.apply(trace, rng)
        if len(published) == 0:
            return (), len(trace)
        distortion = spatial_temporal_distortion(trace, published)
        pseudonym = self.proxy.pseudonyms.pseudonym_for(trace.user_id)
        mechanism = f"degraded:{mech.name}"
        piece = ProtectedPiece(
            pseudonym=pseudonym,
            original_user=trace.user_id,
            original=trace,
            published=published.with_user(pseudonym),
            mechanism=mechanism,
            distortion_m=distortion,
        )
        stats = self.proxy.stats
        stats.chunks_processed += 1
        stats.records_in += len(trace)
        stats.pieces_published += 1
        stats.records_published += len(published)
        stats.mechanism_usage[mechanism] = stats.mechanism_usage.get(mechanism, 0) + 1
        return (piece,), 0

    def _refit(self, window: ClosedWindow) -> None:
        """Opt-in online learning: fold the raw window into the attacks."""
        from repro.core.dataset import MobilityDataset

        delta = MobilityDataset("stream-delta")
        delta.add(window.trace)
        self.proxy.engine.refit(delta)

    # -- flush / close -----------------------------------------------------

    def flush(
        self, user_id: str, acked: int = -1, close_window: bool = False
    ) -> FlushOutcome:
        """Ack the durable frontier; return retained pieces past *acked*.

        ``acked`` is the highest watermark the client has durably
        consumed — entries at or below it are pruned from the piece log.
        With ``close_window=True`` the open window is force-closed and
        protected first (end of stream), so the returned watermark
        covers every record sent.
        """
        session = self._session(user_id)
        if close_window:
            window = session.assembler.close_open()
            if window is not None:
                self._protect_window(session, window)
        session.unacked = [
            entry for entry in session.unacked if entry[0] > acked
        ]
        pieces: List[ProtectedPiece] = []
        for _, window_pieces in session.unacked:
            pieces.extend(window_pieces)
        return FlushOutcome(
            watermark=session.watermark,
            pieces=tuple(pieces),
            erased_records=session.erased_records,
            pieces_dropped=session.pieces_dropped,
        )

    def close(self, user_id: str) -> CloseOutcome:
        """Flush the open window, retire the session, return the tally."""
        session = self._session(user_id)
        window = session.assembler.close_open()
        if window is not None:
            self._protect_window(session, window)
        del self.sessions[user_id]
        self.sessions_closed += 1
        return CloseOutcome(
            watermark=session.watermark,
            records_in=session.records_in,
            records_shed=session.records_shed,
            erased_records=session.erased_records,
            pieces_published=session.pieces_published,
            windows_closed=session.windows_closed,
        )

    def drain(self) -> Dict[str, int]:
        """Graceful shutdown: flush every open window so nothing buffered
        is lost; sessions stay queryable until the process exits."""
        flushed_windows = 0
        flushed_records = 0
        for session in self.sessions.values():
            window = session.assembler.close_open()
            if window is not None:
                flushed_records += len(window)
                self._protect_window(session, window)
                flushed_windows += 1
        return {
            "sessions": len(self.sessions),
            "windows_flushed": flushed_windows,
            "records_flushed": flushed_records,
        }

    # -- observability -----------------------------------------------------

    def pending_records(self) -> int:
        """Records currently buffered across all open windows."""
        return sum(s.assembler.pending for s in self.sessions.values())

    def stats_dict(self) -> Dict[str, Any]:
        """The ``stream`` block of the service's ``stats`` verb."""
        return {
            "sessions_open": len(self.sessions),
            "sessions_opened": self.sessions_opened,
            "sessions_resumed": self.sessions_resumed,
            "sessions_closed": self.sessions_closed,
            "records_in": self.records_in,
            "records_duplicate": self.records_duplicate,
            "records_shed": self.records_shed,
            "records_pending": self.pending_records(),
            "windows_closed": self.windows_closed,
            "windows_shed": self.windows_shed,
            "windows_degraded": self.windows_degraded,
            "pieces_dropped": self.pieces_dropped,
            "overflow_events": dict(self.overflow_events),
        }
