"""Online ingestion: per-user windows, watermarks, bounded backpressure.

The batch engine protects *complete* traces; a deployed crowdsensing
middleware sees an unbounded record stream per user.  This package adds
the online path:

* :class:`~repro.stream.window.WindowAssembler` — per-user tumbling or
  session windows whose closing semantics are bit-identical to the batch
  splitters (:func:`repro.core.split.split_fixed_time` /
  :func:`repro.core.split.split_on_gaps`), so a stream that replays a
  trace publishes the same bytes as ``protect(daily=True)`` on it.
* :class:`~repro.stream.hub.StreamHub` — the session manager: bounded
  buffers with a declared overflow policy (``block`` /
  ``shed`` oldest window / ``degrade`` to the cheapest LPPM), watermark
  bookkeeping (which record ordinals are protected-and-durable), and a
  piece log so a reconnecting client resumes without loss or
  duplication.

The wire vocabulary (``stream_open`` / ``stream_record`` /
``stream_flush`` / ``stream_close``) lives in :mod:`repro.service.api`;
:mod:`repro.service.rpc` adds the transport-level byte budgets.  See
``docs/STREAMING.md`` for the full contract.
"""

from repro.stream.hub import (
    OVERFLOW_POLICIES,
    REASON_BLOCKED,
    REASON_DEGRADED,
    REASON_PIECE_LOG_SHED,
    REASON_SHED,
    CloseOutcome,
    FlushOutcome,
    IngestOutcome,
    StreamConfig,
    StreamHub,
    StreamSession,
)
from repro.stream.window import WINDOW_KINDS, ClosedWindow, WindowAssembler

__all__ = [
    "OVERFLOW_POLICIES",
    "REASON_BLOCKED",
    "REASON_DEGRADED",
    "REASON_PIECE_LOG_SHED",
    "REASON_SHED",
    "WINDOW_KINDS",
    "CloseOutcome",
    "ClosedWindow",
    "FlushOutcome",
    "IngestOutcome",
    "StreamConfig",
    "StreamHub",
    "StreamSession",
    "WindowAssembler",
]
