"""Per-user window assembly for the streaming ingestion path.

A :class:`WindowAssembler` buffers one user's incoming records and cuts
them into windows whose membership is **bit-identical** to the batch
splitters:

* ``tumbling`` — half-open ``[t0 + k·w, t0 + (k+1)·w)`` windows anchored
  at the first record's timestamp, empty windows skipped, exactly like
  :func:`repro.core.split.split_fixed_time`.  Boundaries advance by
  *repeated addition* (``end += window_s``), matching the batch
  splitter's float accumulation, so a record near a boundary lands in
  the same window on both paths.
* ``session`` — a new window starts whenever the inter-record gap
  exceeds ``gap_s``, exactly like
  :func:`repro.core.split.split_on_gaps`.

Only the *open* window is buffered; a closed window is handed to the
caller immediately, so the assembler's memory is bounded by the caller's
overflow policy (see :mod:`repro.stream.hub`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.engine import DEFAULT_CHUNK_S
from repro.core.trace import Trace
from repro.errors import ConfigurationError, StreamError

#: Supported window kinds.
WINDOW_KINDS = ("tumbling", "session")

#: Default session-window gap: one hour without a record ends the visit.
DEFAULT_GAP_S = 3600.0


@dataclass(frozen=True)
class ClosedWindow:
    """One completed window, ready for the cascade.

    ``first_ordinal`` / ``last_ordinal`` are the client-assigned record
    ordinals covered by this window — the unit of the watermark
    bookkeeping: once the window's pieces are durable, the watermark
    advances to ``last_ordinal``.
    """

    trace: Trace
    first_ordinal: int
    last_ordinal: int

    def __len__(self) -> int:
        return len(self.trace)


class WindowAssembler:
    """Assemble one user's record stream into closed windows."""

    def __init__(
        self,
        user_id: str,
        kind: str = "tumbling",
        window_s: float = DEFAULT_CHUNK_S,
        gap_s: float = DEFAULT_GAP_S,
    ) -> None:
        if kind not in WINDOW_KINDS:
            raise ConfigurationError(
                f"unknown window kind {kind!r}; choose from {WINDOW_KINDS}"
            )
        if float(window_s) <= 0:
            raise ConfigurationError(f"window_s must be positive, got {window_s}")
        if float(gap_s) <= 0:
            raise ConfigurationError(f"gap_s must be positive, got {gap_s}")
        self.user_id = user_id
        self.kind = kind
        self.window_s = float(window_s)
        self.gap_s = float(gap_s)
        self._ordinals: List[int] = []
        self._t: List[float] = []
        self._lat: List[float] = []
        self._lng: List[float] = []
        #: End of the current tumbling window (``None`` until anchored).
        self._window_end: Optional[float] = None

    @property
    def pending(self) -> int:
        """Records buffered in the open window."""
        return len(self._t)

    @property
    def last_t(self) -> Optional[float]:
        return self._t[-1] if self._t else None

    def add(
        self, ordinal: int, t: float, lat: float, lng: float
    ) -> Optional[ClosedWindow]:
        """Buffer one record; returns the window it closed, if any.

        Timestamps must be non-decreasing — an out-of-order record is a
        client error (the wire contract requires records in time order,
        mirroring :class:`~repro.core.trace.Trace`'s sortedness
        invariant).
        """
        if self._t and t < self._t[-1]:
            raise StreamError(
                f"stream of {self.user_id!r} is not sorted by time: record "
                f"{ordinal} at t={t} after t={self._t[-1]}"
            )
        closed: Optional[ClosedWindow] = None
        if self.kind == "tumbling":
            if self._window_end is None:
                self._window_end = t + self.window_s
            elif t >= self._window_end:
                closed = self._cut()
                # Repeated addition (not multiplication) matches
                # split_fixed_time's accumulated boundary exactly; empty
                # windows are skipped without emitting anything.
                self._window_end += self.window_s
                while t >= self._window_end:
                    self._window_end += self.window_s
        else:  # session
            if self._t and t - self._t[-1] > self.gap_s:
                closed = self._cut()
        self._ordinals.append(int(ordinal))
        self._t.append(float(t))
        self._lat.append(float(lat))
        self._lng.append(float(lng))
        return closed

    def close_open(self) -> Optional[ClosedWindow]:
        """Cut the open window (flush / end of stream); ``None`` if empty.

        A mid-stream forced close re-anchors tumbling windows at the
        next record — byte-identity with the batch path holds for the
        natural end-of-stream close, which is the only close the replay
        and bench paths perform.
        """
        if not self._t:
            return None
        window = self._cut()
        self._window_end = None
        return window

    def _cut(self) -> ClosedWindow:
        window = ClosedWindow(
            trace=Trace(self.user_id, self._t, self._lat, self._lng),
            first_ordinal=self._ordinals[0],
            last_ordinal=self._ordinals[-1],
        )
        self._ordinals = []
        self._t = []
        self._lat = []
        self._lng = []
        return window
