"""Temporal interpolation of positions along a trace.

This module implements the *temporal projection* that underpins the
paper's spatio-temporal distortion metric (Eq. 8): the expected position
of a user at an arbitrary time ``t``, obtained by linearly interpolating
between the two records of the reference trace that bracket ``t``.
"""

from __future__ import annotations

import bisect
from typing import Sequence, Tuple

from repro.errors import EmptyTraceError
from repro.geo.geodesy import haversine_m


def interpolate_position(
    timestamps: Sequence[float],
    lats: Sequence[float],
    lngs: Sequence[float],
    t: float,
) -> Tuple[float, float]:
    """Expected ``(lat, lng)`` at time *t* along a timestamp-sorted polyline.

    Outside the covered time span, the position clamps to the first/last
    record — the standard convention for STD so that obfuscated records
    pushed slightly out of range are still scored.
    """
    n = len(timestamps)
    if n == 0:
        raise EmptyTraceError("cannot interpolate along an empty trace")
    if t <= timestamps[0]:
        return (lats[0], lngs[0])
    if t >= timestamps[-1]:
        return (lats[-1], lngs[-1])
    hi = bisect.bisect_right(timestamps, t)
    lo = hi - 1
    t0, t1 = timestamps[lo], timestamps[hi]
    if t1 <= t0:
        return (lats[lo], lngs[lo])
    w = (t - t0) / (t1 - t0)
    return (lats[lo] + w * (lats[hi] - lats[lo]), lngs[lo] + w * (lngs[hi] - lngs[lo]))


def temporal_projection_m(
    ref_timestamps: Sequence[float],
    ref_lats: Sequence[float],
    ref_lngs: Sequence[float],
    lat: float,
    lng: float,
    t: float,
) -> float:
    """Distance in metres between ``(lat, lng, t)`` and its temporal projection.

    This is the per-record term of the STD metric: project the record's
    timestamp onto the reference trace and measure how far the obfuscated
    position strayed from where the user actually was at that instant.
    """
    exp_lat, exp_lng = interpolate_position(ref_timestamps, ref_lats, ref_lngs, t)
    return haversine_m(lat, lng, exp_lat, exp_lng)
