"""Metric spatial grids.

Both the AP-attack and the HMC LPPM discretise the world into square
cells of a fixed size in metres (800 m in the paper).  :class:`MetricGrid`
maps lat/lng coordinates to integer cell indices and back, using a fixed
reference latitude so that a given grid instance is a stable, hashable
discretisation shared between the attacker and the protection mechanism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError
from repro.geo.geodesy import EARTH_RADIUS_M

_DEG = math.pi / 180.0


@dataclass(frozen=True, order=True)
class Cell:
    """Integer index of a grid cell (column ``ix`` east, row ``iy`` north)."""

    ix: int
    iy: int


class MetricGrid:
    """Square grid with *cell_size_m* sides anchored at a reference latitude.

    Longitude degrees shrink with latitude, so the grid fixes the metre
    per-degree conversion at ``ref_lat``.  All four evaluation cities span
    well under one degree of latitude, making the resulting cell-size
    error irrelevant against an 800 m cell.
    """

    def __init__(self, cell_size_m: float, ref_lat: float = 45.0) -> None:
        if cell_size_m <= 0:
            raise ConfigurationError(f"cell_size_m must be positive, got {cell_size_m}")
        if not -89.0 <= ref_lat <= 89.0:
            raise ConfigurationError(f"ref_lat must be in [-89, 89], got {ref_lat}")
        self.cell_size_m = float(cell_size_m)
        self.ref_lat = float(ref_lat)
        self._m_per_deg_lat = EARTH_RADIUS_M * _DEG
        self._m_per_deg_lng = EARTH_RADIUS_M * _DEG * math.cos(ref_lat * _DEG)

    def cell_of(self, lat: float, lng: float) -> Cell:
        """Cell containing the point ``(lat, lng)``."""
        ix = math.floor(lng * self._m_per_deg_lng / self.cell_size_m)
        iy = math.floor(lat * self._m_per_deg_lat / self.cell_size_m)
        return Cell(ix, iy)

    def center_of(self, cell: Cell) -> Tuple[float, float]:
        """``(lat, lng)`` of the centre of *cell*."""
        lng = (cell.ix + 0.5) * self.cell_size_m / self._m_per_deg_lng
        lat = (cell.iy + 0.5) * self.cell_size_m / self._m_per_deg_lat
        return (lat, lng)

    def cell_distance_m(self, a: Cell, b: Cell) -> float:
        """Euclidean distance between the centres of two cells, in metres."""
        return self.cell_size_m * math.hypot(a.ix - b.ix, a.iy - b.iy)

    def neighbours(self, cell: Cell, radius: int = 1):
        """Yield all cells within a Chebyshev *radius* of *cell* (excluding it)."""
        for dy in range(-radius, radius + 1):
            for dx in range(-radius, radius + 1):
                if dx == 0 and dy == 0:
                    continue
                yield Cell(cell.ix + dx, cell.iy + dy)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricGrid):
            return NotImplemented
        return self.cell_size_m == other.cell_size_m and self.ref_lat == other.ref_lat

    def __hash__(self) -> int:
        return hash((self.cell_size_m, self.ref_lat))

    def __repr__(self) -> str:
        return f"MetricGrid(cell_size_m={self.cell_size_m}, ref_lat={self.ref_lat})"
