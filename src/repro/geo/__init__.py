"""Geodesy substrate: distances, projections, metric grids, interpolation."""

from repro.geo.geodesy import (
    EARTH_RADIUS_M,
    destination_point,
    equirectangular_distance_m,
    haversine_m,
    local_projector,
)
from repro.geo.grid import Cell, MetricGrid
from repro.geo.interpolate import interpolate_position, temporal_projection_m

__all__ = [
    "EARTH_RADIUS_M",
    "haversine_m",
    "equirectangular_distance_m",
    "destination_point",
    "local_projector",
    "Cell",
    "MetricGrid",
    "interpolate_position",
    "temporal_projection_m",
]
