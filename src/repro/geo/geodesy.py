"""Great-circle geometry on the WGS-84 sphere.

All distances are in metres and all coordinates in decimal degrees.  The
library works at city scale (< 100 km), where the spherical model is
accurate to well under the GPS noise floor, so no ellipsoidal model is
needed.  Vectorised variants accept numpy arrays and are used by the
heatmap and attack code paths, which compare thousands of points.
"""

from __future__ import annotations

import math
from typing import Callable, Tuple

import numpy as np

#: Mean Earth radius in metres (IUGG).
EARTH_RADIUS_M = 6_371_008.8

_DEG = math.pi / 180.0


def haversine_m(lat1: float, lng1: float, lat2: float, lng2: float) -> float:
    """Great-circle distance between two points, in metres."""
    phi1 = lat1 * _DEG
    phi2 = lat2 * _DEG
    dphi = (lat2 - lat1) * _DEG
    dlmb = (lng2 - lng1) * _DEG
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def haversine_m_vec(
    lat1: np.ndarray, lng1: np.ndarray, lat2: np.ndarray, lng2: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`haversine_m` over numpy arrays (broadcasting)."""
    phi1 = np.radians(lat1)
    phi2 = np.radians(lat2)
    dphi = np.radians(lat2 - lat1)
    dlmb = np.radians(lng2 - lng1)
    a = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlmb / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.minimum(1.0, np.sqrt(a)))


def equirectangular_distance_m(lat1: float, lng1: float, lat2: float, lng2: float) -> float:
    """Fast flat-Earth distance, accurate to <0.1 % at city scale.

    Used in inner loops (POI clustering, profile matching) where the full
    haversine would dominate runtime.
    """
    mean_phi = 0.5 * (lat1 + lat2) * _DEG
    x = (lng2 - lng1) * _DEG * math.cos(mean_phi)
    y = (lat2 - lat1) * _DEG
    return EARTH_RADIUS_M * math.hypot(x, y)


def equirectangular_distance_m_vec(
    lat1: np.ndarray, lng1: np.ndarray, lat2: np.ndarray, lng2: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`equirectangular_distance_m` (numpy broadcasting).

    The operation order mirrors the scalar formula exactly, so
    elementwise results differ from it by at most the ``np.cos`` /
    ``np.hypot`` vs :mod:`math` last-ulp noise — callers that need
    bit-exact threshold decisions against the scalar (the POI merge)
    re-check borderline pairs with the scalar function.
    """
    mean_phi = 0.5 * (lat1 + lat2) * _DEG
    x = (lng2 - lng1) * _DEG * np.cos(mean_phi)
    y = (lat2 - lat1) * _DEG
    return EARTH_RADIUS_M * np.hypot(x, y)


def destination_point(lat: float, lng: float, bearing_rad: float, distance_m: float) -> Tuple[float, float]:
    """Point reached from ``(lat, lng)`` after *distance_m* along *bearing_rad*.

    Bearing is measured clockwise from north, in radians.  Uses the exact
    spherical formula so it stays valid for multi-kilometre dummy
    generation (TRL) as well as metre-scale Laplace noise (Geo-I).
    """
    delta = distance_m / EARTH_RADIUS_M
    phi1 = lat * _DEG
    lmb1 = lng * _DEG
    sin_phi2 = math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(delta) * math.cos(bearing_rad)
    phi2 = math.asin(max(-1.0, min(1.0, sin_phi2)))
    y = math.sin(bearing_rad) * math.sin(delta) * math.cos(phi1)
    x = math.cos(delta) - math.sin(phi1) * sin_phi2
    lmb2 = lmb1 + math.atan2(y, x)
    lng2 = (lmb2 / _DEG + 540.0) % 360.0 - 180.0
    return (phi2 / _DEG, lng2)


def local_projector(
    origin_lat: float, origin_lng: float
) -> Tuple[Callable[[float, float], Tuple[float, float]], Callable[[float, float], Tuple[float, float]]]:
    """Return ``(to_xy, to_latlng)`` converters for a local tangent plane.

    ``to_xy(lat, lng) -> (x_m, y_m)`` maps coordinates to metres east/north
    of the origin; ``to_latlng(x_m, y_m)`` is its inverse.  City-scale
    error is negligible and the conversion is branch-free, which makes it
    the projection of choice for grids and generators.
    """
    cos_phi0 = math.cos(origin_lat * _DEG)
    if abs(cos_phi0) < 1e-9:
        raise ValueError("local projection undefined at the poles")
    m_per_deg_lat = EARTH_RADIUS_M * _DEG
    m_per_deg_lng = EARTH_RADIUS_M * _DEG * cos_phi0

    def to_xy(lat: float, lng: float) -> Tuple[float, float]:
        return ((lng - origin_lng) * m_per_deg_lng, (lat - origin_lat) * m_per_deg_lat)

    def to_latlng(x_m: float, y_m: float) -> Tuple[float, float]:
        return (origin_lat + y_m / m_per_deg_lat, origin_lng + x_m / m_per_deg_lng)

    return to_xy, to_latlng
